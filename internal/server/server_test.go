package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/server/api"
)

// testDesignJSON parses a testdata case and returns it as JSON netlist
// bytes — the exact body a client would submit.
func testDesignJSON(t *testing.T, path string) []byte {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := smartly.ParseVerilog(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postOptimize submits one optimize request and decodes the response.
func postOptimize(t *testing.T, url string, req api.OptimizeRequest) (*api.OptimizeResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.Error
		json.NewDecoder(resp.Body).Decode(&e)
		t.Logf("optimize error: %s", e.Error)
		return nil, resp.StatusCode
	}
	var out api.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

// TestOptimizeMatchesLocalRun is the acceptance check: for every flow
// in the named-flow registry, POST /v1/optimize returns bit-identical
// netlist bytes and identical counters to a local Flow.RunDesign over
// the same submitted JSON.
func TestOptimizeMatchesLocalRun(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, ts := newTestServer(t, Config{})

	for _, name := range smartly.FlowNames() {
		// Local reference run over the same wire bytes the server sees.
		local, err := smartly.ReadJSON(bytes.NewReader(designJSON))
		if err != nil {
			t.Fatal(err)
		}
		flow, err := smartly.NamedFlow(name)
		if err != nil {
			t.Fatal(err)
		}
		localReports, err := flow.RunDesign(local)
		if err != nil {
			t.Fatalf("flow %s: local run: %v", name, err)
		}
		var localOut bytes.Buffer
		if err := smartly.WriteJSON(&localOut, local); err != nil {
			t.Fatal(err)
		}

		resp, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: name})
		if code != http.StatusOK {
			t.Fatalf("flow %s: status %d", name, code)
		}
		// The wire carries compact JSON; compare compacted bytes.
		if !bytes.Equal(compactJSON(t, resp.Design), compactJSON(t, localOut.Bytes())) {
			t.Errorf("flow %s: served netlist differs from local run", name)
		}
		for mod, localRep := range localReports {
			want := api.FromRunReport(localRep)
			got, ok := resp.Reports[mod]
			if !ok {
				t.Errorf("flow %s: no report for module %s", name, mod)
				continue
			}
			if !reflect.DeepEqual(got.Counters(), want.Counters()) {
				t.Errorf("flow %s/%s: counters differ: got %v want %v",
					name, mod, got.Counters(), want.Counters())
			}
			if got.Changed != want.Changed {
				t.Errorf("flow %s/%s: changed %v want %v", name, mod, got.Changed, want.Changed)
			}
		}
	}
}

func TestRepeatedRequestHitsCache(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	s, ts := newTestServer(t, Config{})

	first, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if code != http.StatusOK || first.Cache != "miss" {
		t.Fatalf("first request: status %d cache %q", code, first.Cache)
	}
	second, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if second.Cache != "hit" {
		t.Errorf("second request cache = %q, want hit", second.Cache)
	}
	if second.Key != first.Key {
		t.Errorf("keys differ: %s vs %s", first.Key, second.Key)
	}
	if !bytes.Equal(first.Design, second.Design) {
		t.Error("cached response netlist differs")
	}
	if st := s.Cache().Stats(); st.Hits < 1 {
		t.Errorf("cache hit counter not incremented: %+v", st)
	}
}

// TestCacheKeyCanonicalization submits the same logical request in
// different spellings (shuffled JSON object keys, reordered/noisy flow
// script) and expects one cache entry; a changed option must miss.
func TestCacheKeyCanonicalization(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	doc1 := []byte(`{"creator":"x","modules":{"top":{
	  "ports":{"a":{"direction":"input","bits":[2]},"y":{"direction":"output","bits":[3]}},
	  "netnames":{"a":{"bits":[2]},"y":{"bits":[3]}},
	  "cells":{"n0":{"type":"$not","parameters":{"WIDTH":1},"connections":{"A":[2],"Y":[3]}}}}}}`)
	doc2 := []byte(`{"modules":{"top":{
	  "cells":{"n0":{"connections":{"Y":[3],"A":[2]},"parameters":{"WIDTH":1},"type":"$not"}},
	  "netnames":{"y":{"bits":[3]},"a":{"bits":[2]}},
	  "ports":{"y":{"bits":[3],"direction":"output"},"a":{"bits":[2],"direction":"input"}}}},
	  "creator":"x"}`)

	first, code := postOptimize(t, ts.URL, api.OptimizeRequest{
		Design: doc1, Script: "satmux(conflicts=64, depth=4); opt_clean"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// Different JSON key order, different option order and spelling,
	// extra whitespace: must be the same cache entry.
	second, code := postOptimize(t, ts.URL, api.OptimizeRequest{
		Design: doc2, Script: "satmux( depth = 4 ,conflicts=064) ; opt_clean;"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if second.Key != first.Key {
		t.Errorf("canonically equal requests got different keys:\n  %s\n  %s", first.Key, second.Key)
	}
	if second.Cache != "hit" {
		t.Errorf("canonically equal request was a %q, want hit", second.Cache)
	}

	// A different option value must not share the entry.
	third, code := postOptimize(t, ts.URL, api.OptimizeRequest{
		Design: doc1, Script: "satmux(conflicts=65, depth=4); opt_clean"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if third.Key == first.Key || third.Cache != "miss" {
		t.Errorf("different options shared the entry: key %s cache %q", third.Key, third.Cache)
	}
	// Timings change the payload, so they key separately too.
	timed, code := postOptimize(t, ts.URL, api.OptimizeRequest{
		Design: doc1, Script: "satmux(conflicts=64, depth=4); opt_clean", Timings: true})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if timed.Key == first.Key {
		t.Error("timings did not change the cache key")
	}
	if st := s.Cache().Stats(); st.Entries != 3 {
		t.Errorf("expected 3 distinct entries, stats %+v", st)
	}
}

func TestOptimizeErrors(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, ts := newTestServer(t, Config{})

	post := func(req api.OptimizeRequest) (int, string) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e api.Error
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error
	}

	if code, msg := post(api.OptimizeRequest{Flow: "full"}); code != http.StatusBadRequest ||
		!strings.Contains(msg, "no design") {
		t.Errorf("missing design: %d %q", code, msg)
	}
	if code, msg := post(api.OptimizeRequest{Design: designJSON, Flow: "bogus"}); code != http.StatusBadRequest ||
		!strings.Contains(msg, "bogus") {
		t.Errorf("unknown flow: %d %q", code, msg)
	}
	if code, msg := post(api.OptimizeRequest{Design: designJSON, Script: "satmux(gain=2)"}); code != http.StatusBadRequest ||
		!strings.Contains(msg, "unknown option") {
		t.Errorf("bad script: %d %q", code, msg)
	}
	if code, msg := post(api.OptimizeRequest{Design: designJSON, Flow: "full", Script: "opt_clean"}); code != http.StatusBadRequest ||
		!strings.Contains(msg, "both") {
		t.Errorf("flow+script: %d %q", code, msg)
	}
	if code, _ := post(api.OptimizeRequest{Design: []byte(`{"modules":{}}`)}); code != http.StatusBadRequest {
		t.Errorf("empty design: %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d", resp.StatusCode)
	}
}

// TestMalformedDesignsRejectedNotPanic: netlists that decode but break
// IR invariants (or panic the engine) must produce JSON error
// responses, and the server must keep serving afterwards — a panic
// must never wedge the key's in-flight entry.
func TestMalformedDesignsRejectedNotPanic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	malformed := map[string]string{
		"zero-width wire": `{"modules":{"top":{"ports":{},"netnames":{"w":{"bits":[]}},"cells":{}}}}`,
		"width mismatch": `{"modules":{"top":{"ports":{},
		  "netnames":{"a":{"bits":[2]},"b":{"bits":[3,4]}},
		  "cells":{},"connections":[[[2],[3,4]]]}}}`,
		"empty mux connections": `{"modules":{"top":{"ports":{},
		  "netnames":{"a":{"bits":[2]}},
		  "cells":{"c":{"type":"$mux","parameters":{},"connections":{}}}}}}`,
	}
	for name, doc := range malformed {
		// Twice: a panicking first request must not wedge the second.
		for i := 0; i < 2; i++ {
			body, _ := json.Marshal(api.OptimizeRequest{Design: []byte(doc), Flow: "yosys"})
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("%s (attempt %d): transport error %v (handler panicked?)", name, i, err)
			}
			var e api.Error
			json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			if resp.StatusCode < 400 || e.Error == "" {
				t.Errorf("%s (attempt %d): status %d error %q", name, i, resp.StatusCode, e.Error)
			}
		}
	}
	// The server still works.
	good, code := postOptimize(t, ts.URL, api.OptimizeRequest{
		Design: testDesignJSON(t, "../../testdata/fig3.v"), Flow: "yosys"})
	if code != http.StatusOK || good == nil {
		t.Fatalf("healthy request after malformed ones: status %d", code)
	}
}

func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1, QueueDepth: 1})
	// Occupy the whole queue: one token in the run semaphore plus the
	// single admission, as an in-flight slow request would.
	s.sem <- struct{}{}
	release, err := s.admit()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { release(); <-s.sem }()

	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if code != http.StatusServiceUnavailable {
		t.Errorf("saturated server answered %d, want 503", code)
	}
}

func TestAsyncJobRoundTrip(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	s, ts := newTestServer(t, Config{})

	sync, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "full"})
	if code != http.StatusOK {
		t.Fatalf("sync run: %d", code)
	}

	body, _ := json.Marshal(api.OptimizeRequest{Design: designJSON, Flow: "full", Async: true})
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("async submit: %d %+v", resp.StatusCode, job)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Errorf("Location = %q", loc)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if job.State == api.JobDone || job.State == api.JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != api.JobDone || job.Result == nil {
		t.Fatalf("job finished as %s (error %q)", job.State, job.Error)
	}
	// The async result was served from the cache the sync run filled,
	// and is byte-identical to it.
	if job.Result.Cache != "hit" {
		t.Errorf("async result cache = %q, want hit", job.Result.Cache)
	}
	if !bytes.Equal(job.Result.Design, sync.Design) {
		t.Error("async netlist differs from sync run")
	}

	// Graceful drain finds no work left.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestRegistryEndpointsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var flows []api.FlowInfo
	getJSON(t, ts.URL+"/v1/flows", &flows)
	names := map[string]bool{}
	for _, f := range flows {
		names[f.Name] = true
		if f.Script == "" || f.Canonical == "" {
			t.Errorf("flow %s has empty script/canonical", f.Name)
		}
	}
	for _, want := range []string{"yosys", "sat", "rebuild", "full"} {
		if !names[want] {
			t.Errorf("flow %s missing from /v1/flows", want)
		}
	}

	var passes []api.PassInfo
	getJSON(t, ts.URL+"/v1/passes", &passes)
	found := map[string]api.PassInfo{}
	for _, p := range passes {
		found[p.Name] = p
	}
	if p, ok := found["satmux"]; !ok || len(p.Options) == 0 {
		t.Errorf("satmux missing or optionless in /v1/passes: %+v", p)
	}

	var h api.Health
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Errorf("healthz status %q", h.Status)
	}
	if h.Cache.MaxBytes == 0 {
		t.Errorf("healthz cache stats empty: %+v", h.Cache)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestDiskTierAcrossServers restarts the server over the same cache
// directory and expects a warm start.
func TestDiskTierAcrossServers(t *testing.T) {
	dir := t.TempDir()
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")

	c1, err := cache.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Cache: c1})
	first, code := postOptimize(t, ts1.URL, api.OptimizeRequest{Design: designJSON, Flow: "full"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	c2, err := cache.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Cache: c2})
	second, code := postOptimize(t, ts2.URL, api.OptimizeRequest{Design: designJSON, Flow: "full"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if second.Cache != "hit" {
		t.Errorf("restarted server cache = %q, want hit from disk tier", second.Cache)
	}
	if !bytes.Equal(first.Design, second.Design) {
		t.Error("disk-tier payload differs")
	}
}

// compactJSON normalizes JSON bytes for byte-level comparison.
func compactJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
