package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/genbench"
	"repro/internal/rtlil"
	"repro/internal/server/api"
)

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// genDesignJSON generates a deterministic multi-module design and
// returns it as wire bytes plus its recipe (for mutations).
func genDesignJSON(t *testing.T, modules int, seed int64) ([]byte, genbench.DesignRecipe) {
	t.Helper()
	r := genbench.DesignRecipe{Modules: modules, Seed: seed}
	d := genbench.GenerateDesign(r, 0.02)
	var buf bytes.Buffer
	if err := rtlil.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

// mutateDesignJSON re-encodes the design with module index i replaced
// by generation gen.
func mutateDesignJSON(t *testing.T, r genbench.DesignRecipe, i, gen int) []byte {
	t.Helper()
	d := genbench.GenerateDesign(r, 0.02)
	genbench.MutateModule(d, r, 0.02, i, gen)
	var buf bytes.Buffer
	if err := rtlil.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeHash parses response netlist bytes and returns the canonical
// design hash — the serialization-independent identity the sharded and
// whole paths must agree on (their raw bytes differ only in JSON net-id
// labeling).
func decodeHash(t *testing.T, raw []byte) string {
	t.Helper()
	d, err := smartly.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return smartly.HashDesign(d)
}

// TestDesignModeMatchesWholeMode: design-mode sharding must serve a
// bit-identical design (canonical hash) and identical per-module
// counters to both the whole-design path and a local RunDesign, for
// several worker budgets.
func TestDesignModeMatchesWholeMode(t *testing.T) {
	designJSON, _ := genDesignJSON(t, 4, 21)
	_, ts := newTestServer(t, Config{})

	local, err := smartly.ReadJSON(bytes.NewReader(designJSON))
	if err != nil {
		t.Fatal(err)
	}
	flow, err := smartly.NamedFlow("yosys")
	if err != nil {
		t.Fatal(err)
	}
	localReports, err := flow.RunDesign(local)
	if err != nil {
		t.Fatal(err)
	}
	var localOut bytes.Buffer
	if err := smartly.WriteJSON(&localOut, local); err != nil {
		t.Fatal(err)
	}

	whole, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if code != http.StatusOK {
		t.Fatalf("whole mode: status %d", code)
	}
	if whole.Mode != api.ModeWhole {
		t.Errorf("whole mode served as %q", whole.Mode)
	}
	for _, workers := range []int{0, 1, 3} {
		resp, code := postOptimize(t, ts.URL, api.OptimizeRequest{
			Design: designJSON, Flow: "yosys", Mode: api.ModeDesign,
			Workers: workers, NoCache: true, // bypass: force a fresh sharded run each time
		})
		if code != http.StatusOK {
			t.Fatalf("design mode workers=%d: status %d", workers, code)
		}
		if resp.Mode != api.ModeDesign {
			t.Errorf("design mode served as %q", resp.Mode)
		}
		if got, want := decodeHash(t, resp.Design), decodeHash(t, localOut.Bytes()); got != want {
			t.Errorf("workers=%d: design-mode netlist hash %s, local run %s", workers, got, want)
		}
		if got, want := decodeHash(t, resp.Design), decodeHash(t, whole.Design); got != want {
			t.Errorf("workers=%d: design-mode netlist hash %s, whole mode %s", workers, got, want)
		}
		for mod, localRep := range localReports {
			want := api.FromRunReport(localRep)
			got, ok := resp.Reports[mod]
			if !ok {
				t.Errorf("workers=%d: no report for module %s", workers, mod)
				continue
			}
			if !reflect.DeepEqual(got.Counters(), want.Counters()) {
				t.Errorf("workers=%d module %s: counters %v, want %v", workers, mod, got.Counters(), want.Counters())
			}
		}
	}
}

// TestDesignModeIncrementalResubmit is the incremental-resubmit
// contract end to end at the server layer: a warm resubmission hits on
// every module; mutating exactly one module re-optimizes only that
// module.
func TestDesignModeIncrementalResubmit(t *testing.T) {
	const modules = 8
	designJSON, recipe := genDesignJSON(t, modules, 33)
	_, ts := newTestServer(t, Config{})

	post := func(body []byte) *api.OptimizeResponse {
		t.Helper()
		resp, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: body, Flow: "yosys", Mode: api.ModeDesign})
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		return resp
	}

	cold := post(designJSON)
	if cold.Cache != "miss" || cold.ModuleCache == nil || cold.ModuleCache.Misses != modules {
		t.Fatalf("cold: cache=%q stats=%+v, want miss with %d misses", cold.Cache, cold.ModuleCache, modules)
	}
	warm := post(designJSON)
	if warm.Cache != "hit" || warm.ModuleCache.Hits != modules {
		t.Fatalf("warm: cache=%q stats=%+v, want hit with %d hits", warm.Cache, warm.ModuleCache, modules)
	}
	if !bytes.Equal(compactJSON(t, warm.Design), compactJSON(t, cold.Design)) {
		t.Error("warm response netlist differs from cold")
	}

	incr := post(mutateDesignJSON(t, recipe, 2, 1))
	if incr.Cache != "partial" {
		t.Errorf("incremental: cache=%q, want partial", incr.Cache)
	}
	if incr.ModuleCache.Hits != modules-1 || incr.ModuleCache.Misses != 1 {
		t.Errorf("incremental: stats=%+v, want %d hits 1 miss", incr.ModuleCache, modules-1)
	}
	for name, status := range incr.CacheByModule {
		wantStatus := "hit"
		if name == "m02_wb_conmax" {
			wantStatus = "miss"
		}
		if status != wantStatus {
			t.Errorf("incremental: module %s status %q, want %q", name, status, wantStatus)
		}
	}
}

// TestDesignModeBadMode: an unknown mode is a 400.
func TestDesignModeBadMode(t *testing.T) {
	designJSON, _ := genDesignJSON(t, 1, 1)
	_, ts := newTestServer(t, Config{})
	_, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Mode: "bogus"})
	if code != http.StatusBadRequest {
		t.Errorf("bogus mode: status %d, want 400", code)
	}
}

// TestDesignModeDefaultMode: a server configured with DefaultMode
// design shards requests that set no mode.
func TestDesignModeDefaultMode(t *testing.T) {
	designJSON, _ := genDesignJSON(t, 2, 9)
	_, ts := newTestServer(t, Config{DefaultMode: api.ModeDesign})
	resp, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Mode != api.ModeDesign || resp.ModuleCache == nil {
		t.Errorf("default-mode response mode=%q stats=%+v, want design mode", resp.Mode, resp.ModuleCache)
	}
}

// TestDesignModeConcurrentWarmHits hammers a primed module tier from
// many goroutines; every response must be a full hit with identical
// bytes (run under -race in CI).
func TestDesignModeConcurrentWarmHits(t *testing.T) {
	const modules = 4
	designJSON, _ := genDesignJSON(t, modules, 17)
	_, ts := newTestServer(t, Config{Jobs: 4, QueueDepth: 64})

	prime, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys", Mode: api.ModeDesign})
	if code != http.StatusOK {
		t.Fatalf("prime: status %d", code)
	}
	want := compactJSON(t, prime.Design)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys", Mode: api.ModeDesign})
			if code != http.StatusOK {
				errs <- "bad status"
				return
			}
			if resp.Cache != "hit" || resp.ModuleCache.Hits != modules {
				errs <- "warm request not a full hit"
				return
			}
			if !bytes.Equal(compactJSON(t, resp.Design), want) {
				errs <- "warm bytes differ"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestDesignModeCancelLeavesCacheUsable cancels a design-mode run
// mid-shard (server Close) and checks the shared cache directory still
// serves a fresh server correctly: entries are either absent (miss,
// recompute) or valid — never corrupt.
func TestDesignModeCancelLeavesCacheUsable(t *testing.T) {
	const modules = 6
	designJSON, _ := genDesignJSON(t, modules, 55)
	dir := t.TempDir()

	c1, err := cache.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Cache: c1, Jobs: 2})
	ctx, cancelReq := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts1.URL+"/v1/optimize",
			bytes.NewReader(mustMarshal(t, api.OptimizeRequest{Design: designJSON, Flow: "full", Mode: api.ModeDesign})))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Let some shards start, then kill the run context mid-design.
	time.Sleep(50 * time.Millisecond)
	s1.Close()
	cancelReq()
	<-done

	// A fresh server over the same disk tier must serve the design
	// correctly: whatever the canceled run left behind is either a
	// valid entry (hit) or nothing (miss + recompute).
	c2, err := cache.New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Cache: c2})
	resp, code := postOptimize(t, ts2.URL, api.OptimizeRequest{Design: designJSON, Flow: "full", Mode: api.ModeDesign})
	if code != http.StatusOK {
		t.Fatalf("post-cancel request: status %d", code)
	}
	if resp.ModuleCache == nil || resp.ModuleCache.Hits+resp.ModuleCache.Misses != modules {
		t.Fatalf("post-cancel stats %+v, want %d modules accounted", resp.ModuleCache, modules)
	}
	// And the bytes must match a cache-bypassing reference run.
	ref, code := postOptimize(t, ts2.URL, api.OptimizeRequest{Design: designJSON, Flow: "full", Mode: api.ModeDesign, NoCache: true})
	if code != http.StatusOK {
		t.Fatalf("reference run: status %d", code)
	}
	if !bytes.Equal(compactJSON(t, resp.Design), compactJSON(t, ref.Design)) {
		t.Error("post-cancel cached design differs from reference run")
	}
}

// TestCorruptCachedPayloadFailsSoft plants undecodable bytes under both
// a whole-design key and a module key; the server must evict and
// recompute (a slow miss), not fail the request.
func TestCorruptCachedPayloadFailsSoft(t *testing.T) {
	designJSON, _ := genDesignJSON(t, 2, 3)
	s, ts := newTestServer(t, Config{})

	// Learn the real keys from a clean run, then poison them.
	whole, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if code != http.StatusOK {
		t.Fatalf("priming whole: status %d", code)
	}
	s.Cache().Put(whole.Key, []byte("not json"))
	resp, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if code != http.StatusOK {
		t.Fatalf("whole mode with poisoned entry: status %d, want 200", code)
	}
	if resp.Cache != "miss" {
		t.Errorf("poisoned whole entry served as %q, want miss (recomputed)", resp.Cache)
	}
	if !bytes.Equal(compactJSON(t, resp.Design), compactJSON(t, whole.Design)) {
		t.Error("recomputed whole-design bytes differ")
	}

	// Module tier: poison every module entry via the cache's own keys.
	d, err := smartly.ReadJSON(bytes.NewReader(designJSON))
	if err != nil {
		t.Fatal(err)
	}
	flow, err := smartly.NamedFlow("yosys")
	if err != nil {
		t.Fatal(err)
	}
	prime, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys", Mode: api.ModeDesign})
	if code != http.StatusOK {
		t.Fatalf("priming design mode: status %d", code)
	}
	for _, m := range d.Modules() {
		key := cache.ModuleKey{Module: smartly.Hash(m), Flow: flow.Canonical()}
		s.Cache().Put(key.ID(), []byte("{broken"))
	}
	resp, code = postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys", Mode: api.ModeDesign})
	if code != http.StatusOK {
		t.Fatalf("design mode with poisoned modules: status %d, want 200", code)
	}
	if resp.ModuleCache.Misses != 2 {
		t.Errorf("poisoned module entries: stats %+v, want 2 misses (recomputed)", resp.ModuleCache)
	}
	if !bytes.Equal(compactJSON(t, resp.Design), compactJSON(t, prime.Design)) {
		t.Error("recomputed module-sharded bytes differ")
	}
}
