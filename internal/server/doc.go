// Package server implements smartlyd's HTTP serving layer: RTL
// optimization as a service on top of the public smartly facade and the
// flow registry.
//
// Endpoints (wire types in the api subpackage, full reference in
// docs/api.md):
//
//	POST /v1/optimize     optimize a JSON netlist with a named flow or
//	                      flow script; sync by default, async with
//	                      {"async": true}
//	GET  /v1/jobs/{id}    poll an async submission
//	GET  /v1/flows        the registered named flows
//	GET  /v1/passes       the pass registry with option specs
//	GET  /healthz         liveness, uptime, job and cache counters
//
// Requests flow through a bounded job queue: at most Config.Jobs
// optimizations run concurrently, at most Config.QueueDepth may be
// admitted (running + waiting) before the server answers 503, and each
// run carries its own worker budget into the pass engine
// (smartly.WithWorkers). Results are served through a content-addressed
// cache (internal/cache) keyed by canonical netlist hash + normalized
// flow script + option set, with identical in-flight requests coalesced
// into one computation.
//
// Design mode ({"mode": "design"}, or a Config.DefaultMode of
// api.ModeDesign) shards a request per module: modules fan out to a
// bounded pool (the worker budget split by opt.SplitWorkers) and each
// module is cached under its own content-addressed key
// (cache.ModuleKey), so a resubmitted design with one edited module
// re-optimizes only that module. Responses carry per-module cache
// outcomes; see docs/api.md for the incremental-resubmit contract.
//
// Shutdown is graceful: Close cancels the run context, Drain waits for
// admitted work. cmd/smartlyd wires both behind SIGINT/SIGTERM.
package server
