package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// GET /v1/jobs/{id}/events streams a job's progress as server-sent
// events: lifecycle transitions (event: state) and per-pass completions
// (event: pass), each with its sequence number as the SSE id. The
// stream replays buffered events first — subscribing after the job
// finished replays its whole (retained) history — then follows the live
// tail and ends when the job reaches a terminal state. A reconnecting
// client resumes without duplicates via the standard Last-Event-ID
// header (or ?after=N), both holding the last Seq it saw.

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	after, err := eventsAfter(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, next, terminal := s.jobs.eventsSince(j, after)
		for _, ev := range evs {
			raw, err := json.Marshal(ev)
			if err != nil {
				continue // wire type marshals by construction
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, raw); err != nil {
				return // client gone
			}
			after = ev.Seq
		}
		flusher.Flush()
		if terminal {
			return
		}
		select {
		case <-next:
		case <-r.Context().Done():
			return
		case <-s.runCtx.Done():
			return
		}
	}
}

// eventsAfter resolves the resume position of an events subscription:
// ?after=N, else the SSE-standard Last-Event-ID header, else 0 (the
// whole retained stream).
func eventsAfter(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("after")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		return 0, nil
	}
	after, err := strconv.Atoi(raw)
	if err != nil || after < 0 {
		return 0, fmt.Errorf("bad event position %q: want a non-negative integer", raw)
	}
	return after, nil
}
