package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// GET /v1/jobs/{id}/events streams a job's progress as server-sent
// events: lifecycle transitions (event: state) and per-pass completions
// (event: pass), each with "epoch-seq" as the SSE id (see api.JobEvent:
// seq numbers events within one incarnation of the job, epoch counts
// incarnations across daemon restarts). The stream replays buffered
// events first — subscribing after the job finished replays its whole
// (retained) history — then follows the live tail and ends when the job
// reaches a terminal state. A reconnecting client resumes without
// duplicates via the standard Last-Event-ID header (or ?after=); a
// resume position from an older epoch is stale — the adopted job's
// stream restarted at seq 1 — and is replayed from the start instead of
// skipping events the new incarnation may never emit.

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	epoch, after, err := eventsAfter(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// An un-epoched position (plain "N", or the zero default) means the
	// current incarnation; a mismatched one predates a restart, so the
	// whole stream is fresh to that subscriber.
	if epoch != 0 && epoch != j.epoch {
		after = 0
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	s.metrics.sse.Add(1)
	defer s.metrics.sse.Add(-1)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, next, terminal := s.jobs.eventsSince(j, after)
		for _, ev := range evs {
			raw, err := json.Marshal(ev)
			if err != nil {
				continue // wire type marshals by construction
			}
			if _, err := fmt.Fprintf(w, "id: %d-%d\nevent: %s\ndata: %s\n\n", ev.Epoch, ev.Seq, ev.Type, raw); err != nil {
				return // client gone
			}
			after = ev.Seq
		}
		flusher.Flush()
		if terminal {
			return
		}
		select {
		case <-next:
		case <-r.Context().Done():
			return
		case <-s.runCtx.Done():
			return
		}
	}
}

// eventsAfter resolves the resume position of an events subscription:
// ?after=, else the SSE-standard Last-Event-ID header, else the whole
// retained stream. Positions are either "epoch-seq" (as the stream's
// SSE ids are emitted) or a bare seq, which means "seq within the
// job's current incarnation" (epoch 0).
func eventsAfter(r *http.Request) (epoch, after int, err error) {
	raw := r.URL.Query().Get("after")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		return 0, 0, nil
	}
	seqPart := raw
	if e, s, ok := strings.Cut(raw, "-"); ok {
		epoch, err = strconv.Atoi(e)
		if err != nil || epoch <= 0 {
			return 0, 0, fmt.Errorf("bad event position %q: want SEQ or EPOCH-SEQ", raw)
		}
		seqPart = s
	}
	after, err = strconv.Atoi(seqPart)
	if err != nil || after < 0 {
		return 0, 0, fmt.Errorf("bad event position %q: want SEQ or EPOCH-SEQ", raw)
	}
	return epoch, after, nil
}
