package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server/api"
)

// pollStatus fetches one job and returns the HTTP status (404 once the
// GC collected it).
func pollStatus(t *testing.T, url, id string) int {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestGCStartupSweep is the orphan-leak regression test: a job store
// left behind by a crashed prior incarnation — a stray temp file from
// an interrupted save, a damaged record recovery cannot adopt, and a
// long-finished terminal record — is cleaned at startup, while a
// queued record (a live job) survives, re-runs and stays durable.
func TestGCStartupSweep(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	jobsDir := filepath.Join(t.TempDir(), "jobs")
	d, err := newDiskJobs(jobsDir, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A crashed daemon's leftovers.
	if err := os.WriteFile(filepath.Join(jobsDir, "job-123abc"), []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobsDir, "damaged.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(api.OptimizeRequest{Design: designJSON, Flow: "yosys", Async: true})
	d.save(jobRecord{
		ID: "livejob1", State: api.JobQueued, Epoch: 1,
		SubmittedAt: time.Now(), Request: req,
	})
	d.save(jobRecord{
		ID: "oldjob1", State: api.JobDone, Epoch: 1,
		SubmittedAt: time.Now().Add(-3 * time.Hour),
		FinishedAt:  time.Now().Add(-2 * time.Hour),
	})

	_, ts := newTestServer(t, Config{
		JobsDir: jobsDir,
		JobsTTL: time.Hour, // oldjob1 expired, anything fresh is not
	})

	for _, gone := range []string{"job-123abc", "damaged.json", "oldjob1.json"} {
		if _, err := os.Stat(filepath.Join(jobsDir, gone)); !os.IsNotExist(err) {
			t.Errorf("%s survived the startup sweep (err %v)", gone, err)
		}
	}
	if code := pollStatus(t, ts.URL, "oldjob1"); code != http.StatusNotFound {
		t.Errorf("collected job polls as %d, want 404", code)
	}
	// The live job survived the sweep, re-ran under its original id and
	// kept its durable record.
	if j := pollJob(t, ts.URL, "livejob1"); j.State != api.JobDone {
		t.Fatalf("recovered job finished as %s (%s)", j.State, j.Error)
	}
	if _, err := os.Stat(filepath.Join(jobsDir, "livejob1.json")); err != nil {
		t.Errorf("live job's record did not survive: %v", err)
	}
}

// TestGCPolicies drives one sweep per retention policy deterministically
// (no ticker): the age policy collects expired terminal jobs oldest
// first, the size policy trims to the byte budget, and fresh jobs
// survive both.
func TestGCPolicies(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	s, ts := newTestServer(t, Config{
		JobsDir: filepath.Join(t.TempDir(), "jobs"),
	})

	var ids []string
	for i := 0; i < 3; i++ {
		job := postAsync(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
		if j := pollJob(t, ts.URL, job.ID); j.State != api.JobDone {
			t.Fatalf("job %d: %s (%s)", i, j.State, j.Error)
		}
		ids = append(ids, job.ID)
	}
	// Backdate the first two beyond a 1h TTL.
	for i, id := range ids[:2] {
		j := s.jobs.get(id)
		s.jobs.mu.Lock()
		j.finished = time.Now().Add(-2*time.Hour + time.Duration(i)*time.Minute)
		s.jobs.mu.Unlock()
	}

	s.cfg.JobsTTL = time.Hour
	s.sweepJobs(false)
	for _, id := range ids[:2] {
		if code := pollStatus(t, ts.URL, id); code != http.StatusNotFound {
			t.Errorf("expired job %s polls as %d, want 404", id, code)
		}
	}
	if code := pollStatus(t, ts.URL, ids[2]); code != http.StatusOK {
		t.Errorf("fresh job %s polls as %d, want 200", ids[2], code)
	}

	// Size policy: a budget of one byte forces the remaining terminal
	// record out.
	records, bytes := s.jobs.disk.usage()
	if records != 1 || bytes <= 0 {
		t.Fatalf("after TTL sweep: %d records, %d bytes, want 1 record", records, bytes)
	}
	s.cfg.JobsTTL = 0
	s.cfg.JobsMaxBytes = 1
	s.sweepJobs(false)
	if records, bytes = s.jobs.disk.usage(); records != 0 || bytes != 0 {
		t.Errorf("after budget sweep: %d records, %d bytes, want empty store", records, bytes)
	}
	if code := pollStatus(t, ts.URL, ids[2]); code != http.StatusNotFound {
		t.Errorf("over-budget job polls as %d, want 404", code)
	}

	// The sweeps are visible on /metrics.
	out := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`smartlyd_jobs_gc_total{reason="ttl"} 2`,
		`smartlyd_jobs_gc_total{reason="bytes"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestGCNeverCollectsLiveJobs pins the mechanism-level guarantee: a
// queued or running job cannot be forgotten, whatever policy asks.
func TestGCNeverCollectsLiveJobs(t *testing.T) {
	var js jobStore
	js.init(nil, nil)
	j := js.add(nil)
	if got := js.forget(j.id); got != nil {
		t.Fatal("forget removed a queued job")
	}
	js.setState(j, api.JobRunning, "", nil, nil)
	if got := js.forget(j.id); got != nil {
		t.Fatal("forget removed a running job")
	}
	js.setState(j, api.JobDone, "", nil, nil)
	if got := js.forget(j.id); got == nil {
		t.Fatal("forget refused a terminal job")
	}
	if js.get(j.id) != nil {
		t.Fatal("forgotten job still resolves")
	}
}

// TestGCBackgroundTicker: with a retention policy and a short interval
// the daemon collects expired records on its own, no restart needed.
func TestGCBackgroundTicker(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	jobsDir := filepath.Join(t.TempDir(), "jobs")
	s, ts := newTestServer(t, Config{
		JobsDir:        jobsDir,
		JobsTTL:        5 * time.Millisecond,
		JobsGCInterval: 10 * time.Millisecond,
	})

	job := postAsync(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if j := pollJob(t, ts.URL, job.ID); j.State != api.JobDone {
		t.Fatalf("job: %s (%s)", j.State, j.Error)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := pollStatus(t, ts.URL, job.ID); code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background GC never collected the expired job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(jobsDir, job.ID+".json")); !os.IsNotExist(err) {
		t.Errorf("expired record still on disk (err %v)", err)
	}
	// Close stops the ticker goroutine.
	s.Close()
	select {
	case <-s.gcDone:
	case <-time.After(5 * time.Second):
		t.Fatal("GC goroutine did not exit on Close")
	}
}
