package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/opt"
	"repro/internal/server/api"
)

// Design-mode sharding: instead of caching one payload per design, the
// request's modules are fanned out to a bounded worker pool and each
// module is cached under its own content-addressed key
// (cache.ModuleKey: canonical module hash + normalized flow + option
// set). A warm resubmission with one edited module re-optimizes only
// that module and refills the other entries from cache — the
// incremental-resubmit contract documented in docs/api.md. The merge is
// deterministic: module results land in design order, so the response
// design and reports are bit-identical to the whole-design path.

// modPayload is the cacheable unit of design-mode sharding: one
// optimized module (as a single-module design in the wire JSON format)
// plus its run report.
type modPayload struct {
	Module json.RawMessage `json:"module"`
	Report api.Report      `json:"report"`
}

// moduleOut is the outcome of one module's shard.
type moduleOut struct {
	name   string
	mod    *smartly.Module
	report api.Report
	status string // "hit", "miss" or "bypass"
	err    error
}

// serveDesign produces a design-mode response for a request that holds
// a run slot.
func (s *Server) serveDesign(pr *request) (*api.OptimizeResponse, error) {
	start := time.Now()
	mods := pr.design.Modules()
	workers := s.requestWorkers(pr)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	moduleJobs, perModule := opt.SplitWorkers(workers, len(mods))
	outs := make([]moduleOut, len(mods))
	opt.ForEach(s.runCtx, moduleJobs, len(mods), func(i int) {
		outs[i] = s.serveModule(pr, i, perModule)
	})
	stats := api.ModuleCacheStats{}
	byModule := make(map[string]string, len(mods))
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("module %s: %w", mods[i].Name, outs[i].err)
		}
		byModule[outs[i].name] = outs[i].status
		if outs[i].status == "hit" {
			stats.Hits++
		} else {
			stats.Misses++
		}
	}
	if err := s.runCtx.Err(); err != nil {
		return nil, err
	}
	// Deterministic merge: every shard's module (cached or freshly
	// computed, both canonical JSON round-trips) replaces the request's
	// module at its design-order position.
	reports := make(map[string]api.Report, len(mods))
	for i := range outs {
		pr.design.ReplaceModule(outs[i].mod)
		reports[outs[i].name] = outs[i].report
	}
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, pr.design); err != nil {
		return nil, err
	}
	resp := &api.OptimizeResponse{
		Key:           pr.key.ID(),
		Cache:         aggregateStatus(pr.req.NoCache, stats, len(mods)),
		Mode:          api.ModeDesign,
		CacheByModule: byModule,
		ModuleCache:   &stats,
		Flow:          pr.key.Flow,
		ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
		Design:        buf.Bytes(),
		Reports:       reports,
	}
	s.logf("optimize flow=%q key=%s mode=design modules=%d hits=%d misses=%d elapsed=%s",
		pr.key.Flow, pr.key.ID()[:12], len(mods), stats.Hits, stats.Misses,
		time.Since(start).Round(time.Microsecond))
	return resp, nil
}

// aggregateStatus folds the per-module outcomes into the top-level
// Cache field: "hit" when every module hit, "miss" when none did,
// "partial" otherwise ("bypass" under NoCache).
func aggregateStatus(noCache bool, stats api.ModuleCacheStats, modules int) string {
	switch {
	case noCache:
		return "bypass"
	case stats.Hits == modules:
		return "hit"
	case stats.Hits == 0:
		return "miss"
	default:
		return "partial"
	}
}

// serveModule serves one module shard: from the module tier, a
// coalesced in-flight computation, or its own run under the split
// worker budget. Cache semantics (coalescing, evict-and-recompute-once
// on undecodable payloads) are shared with the whole-design path via
// serveCached.
func (s *Server) serveModule(pr *request, i, perModule int) moduleOut {
	m := pr.design.Modules()[i]
	out := moduleOut{name: m.Name}
	key := cache.ModuleKey{
		Module:  smartly.Hash(m),
		Flow:    pr.key.Flow,
		Options: pr.key.Options,
	}
	compute := func() ([]byte, error) {
		return s.computeGuarded(func() ([]byte, error) { return s.computeModule(pr, m, perModule) })
	}
	decode := func(raw []byte) error {
		var err error
		out.mod, out.report, err = decodeModPayload(raw, m.Name)
		return err
	}
	out.status, out.err = s.serveCached(pr.req.NoCache, key.ID(), compute, decode)
	return out
}

// computeModule optimizes one module in place under the per-module
// worker budget and serializes its cacheable payload. The module
// belongs to this request's private design, so in-place mutation is
// safe; the caller replaces it with the decoded payload either way.
func (s *Server) computeModule(pr *request, m *smartly.Module, perModule int) ([]byte, error) {
	opts := []smartly.RunOption{
		smartly.WithContext(s.runCtx),
		smartly.WithWorkers(perModule),
	}
	opts = append(opts, progressOption(pr, m.Name)...)
	if pr.req.Timings {
		opts = append(opts, smartly.WithTimings())
	}
	rep, err := pr.flow.Run(m, opts...)
	if err != nil {
		return nil, err
	}
	one := smartly.NewDesign()
	one.AddModule(m)
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, one); err != nil {
		return nil, err
	}
	return json.Marshal(modPayload{Module: buf.Bytes(), Report: api.FromRunReport(rep)})
}

// decodeModPayload decodes one cached module payload and checks it
// carries exactly the expected module (the module hash keys the entry,
// and the hash covers the name, so a mismatch means a damaged entry).
func decodeModPayload(raw []byte, name string) (*smartly.Module, api.Report, error) {
	var p modPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, api.Report{}, err
	}
	d, err := decodeDesign(p.Module)
	if err != nil {
		return nil, api.Report{}, err
	}
	if len(d.Modules()) != 1 || d.Modules()[0].Name != name {
		return nil, api.Report{}, fmt.Errorf("payload holds %d modules, want module %q", len(d.Modules()), name)
	}
	return d.Modules()[0], p.Report, nil
}
