package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/server/api"
)

// Config tunes a Server.
type Config struct {
	// Jobs bounds how many optimizations run concurrently (0 =
	// runtime.GOMAXPROCS(0)).
	Jobs int
	// QueueDepth bounds how many requests may be admitted — running
	// plus waiting for a slot — before new ones are rejected with 503
	// (0 = 4*Jobs).
	QueueDepth int
	// Workers is the default per-request engine worker budget when a
	// request does not set its own (0 = all cores).
	Workers int
	// DefaultFlow runs when a request names neither a flow nor a
	// script ("" = "full").
	DefaultFlow string
	// DefaultMode is the cache granularity of requests that do not set
	// their own: api.ModeWhole (one entry per design, the default) or
	// api.ModeDesign (module-sharded entries, incremental resubmits).
	DefaultMode string
	// Cache is the result cache; nil builds a memory-only cache with
	// the default bound.
	Cache *cache.Cache
	// JobsDir persists async jobs to a durable store under this
	// directory: a restarted daemon re-serves finished jobs and re-runs
	// queued or interrupted ones under their original ids. "" keeps
	// jobs in memory only (they die with the process, and long-pruned
	// results report result_evicted instead of re-hydrating).
	JobsDir string
	// JobsTTL bounds how long terminal job records are retained in the
	// durable store: records whose job finished more than JobsTTL ago
	// are collected by the background GC (and at startup). 0 disables
	// the age policy. Ignored without JobsDir.
	JobsTTL time.Duration
	// JobsMaxBytes bounds the durable job store's total size: beyond
	// it, the oldest-finished terminal records are collected until the
	// bound holds. 0 disables the size policy. Ignored without JobsDir.
	JobsMaxBytes int64
	// JobsGCInterval is the background GC period (0 = 1 minute when a
	// policy is set). The startup sweep — which also collects orphaned
	// records left by crashed prior incarnations — runs regardless.
	JobsGCInterval time.Duration
	// Logf receives one structured line per request; nil discards.
	Logf func(format string, args ...any)
	// MaxBodyBytes bounds request bodies (0 = 512 MiB).
	MaxBodyBytes int64
}

// Server serves optimization flows over HTTP. Create with New, expose
// via Handler, stop with Close + Drain.
type Server struct {
	cfg   Config
	cache *cache.Cache
	mux   *http.ServeMux
	start time.Time

	// runCtx outlives individual requests: computations shared through
	// the cache (and async jobs) are canceled by Close, not by the
	// submitting client going away.
	runCtx context.Context
	stop   context.CancelFunc

	sem      chan struct{} // admission: one token per running optimization
	admitted atomic.Int64  // running + waiting requests

	// drainMu makes the draining check and wg.Add one atomic step:
	// without it a request could pass the check, lose the CPU, and
	// wg.Add after Drain's wg.Wait already observed zero — Drain would
	// return with that request still starting.
	drainMu  sync.Mutex
	draining bool // Drain called: admit nothing new
	wg       sync.WaitGroup

	jobs    jobStore
	metrics *serverMetrics

	// gcDone closes when the background job-store GC goroutine (if
	// configured) has exited; Close waits for nothing — the goroutine
	// watches runCtx — but tests join on it.
	gcDone chan struct{}
}

// New builds a Server. The flow registry must be populated (importing
// the repro facade does this).
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Jobs
	}
	if cfg.DefaultFlow == "" {
		cfg.DefaultFlow = "full"
	}
	if cfg.DefaultMode == "" {
		cfg.DefaultMode = api.ModeWhole
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 512 << 20
	}
	c := cfg.Cache
	if c == nil {
		c, _ = cache.New(0, "") // memory-only New cannot fail
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   c,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		runCtx:  ctx,
		stop:    stop,
		sem:     make(chan struct{}, cfg.Jobs),
		metrics: newServerMetrics(),
		gcDone:  make(chan struct{}),
	}
	var disk *diskJobs
	if cfg.JobsDir != "" {
		var err error
		disk, err = newDiskJobs(cfg.JobsDir, s.logf)
		if err != nil {
			// Fail soft, like the cache's disk tier: the daemon still
			// serves, jobs just lose durability. cmd/smartlyd pre-creates
			// the directory so misconfiguration fails fast there.
			s.logf("job store disabled: %v", err)
			disk = nil
		}
	}
	s.jobs.init(disk, s.metrics.jobTransition)
	s.mux.HandleFunc("POST /v1/optimize", s.instrument("optimize", s.handleOptimize))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	s.mux.HandleFunc("GET /v1/cache/{id}", s.instrument("cache_get", s.handleCacheGet))
	s.mux.HandleFunc("PUT /v1/cache/{id}", s.instrument("cache_put", s.handleCachePut))
	s.mux.HandleFunc("GET /v1/flows", s.instrument("flows", s.handleFlows))
	s.mux.HandleFunc("GET /v1/passes", s.instrument("passes", s.handlePasses))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.recoverJobs()
	s.startJobsGC()
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (for stats and tests).
func (s *Server) Cache() *cache.Cache { return s.cache }

// Close cancels the run context: running and queued optimizations
// return context errors. Use Drain first for a graceful stop.
func (s *Server) Close() { s.stop() }

// Drain stops admission (new requests are rejected with 503) and then
// blocks until all already-admitted work — sync requests and async jobs
// — has finished, or ctx expires. Without the admission stop a steady
// stream of new requests could keep the wait from ever completing.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// writeJSON writes one JSON response body. An Encode failure at this
// point is almost always the client hanging up mid-response; the status
// line is already written, so all that remains is to log it instead of
// silently swallowing it.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("writing response (status %d): %v", code, err)
	}
}

// writeError writes the error body shared by every non-2xx response.
func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, api.Error{Error: fmt.Sprintf(format, args...)})
}

// request is one validated optimization request: everything derived
// from the body before any queueing happens, so bad requests fail fast
// with 400 and async jobs cannot fail on input errors after the 202.
type request struct {
	req    api.OptimizeRequest
	design *smartly.Design
	flow   *smartly.Flow
	key    cache.Key
	// mode is the resolved cache granularity (api.ModeWhole or
	// api.ModeDesign; the request's own, or the server default).
	mode string
	// progress, when set, receives per-pass events while the request's
	// own computation runs (async jobs feed their event stream with it;
	// cache hits emit none — there is no computation to observe).
	progress func(api.JobEvent)
}

// parseRequest decodes and validates an optimize request body.
func (s *Server) parseRequest(r *http.Request) (*request, error) {
	var req api.OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request body: %w", err)
	}
	return s.validateRequest(req)
}

// validateRequest validates a decoded optimize request. Split from
// parseRequest so job recovery can re-validate persisted request
// records through the same path.
func (s *Server) validateRequest(req api.OptimizeRequest) (*request, error) {
	if len(req.Design) == 0 || string(req.Design) == "null" {
		return nil, fmt.Errorf("request has no design")
	}
	if req.Flow != "" && req.Script != "" {
		return nil, fmt.Errorf("request sets both flow (%q) and script; choose one", req.Flow)
	}
	var flow *smartly.Flow
	var err error
	switch {
	case req.Script != "":
		flow, err = smartly.ParseFlow(req.Script)
	case req.Flow != "":
		flow, err = smartly.NamedFlow(req.Flow)
	default:
		flow, err = smartly.NamedFlow(s.cfg.DefaultFlow)
	}
	if err != nil {
		return nil, err
	}
	mode := req.Mode
	if mode == "" {
		mode = s.cfg.DefaultMode
	}
	if mode != api.ModeWhole && mode != api.ModeDesign {
		return nil, fmt.Errorf("unknown mode %q (want %q or %q)", req.Mode, api.ModeWhole, api.ModeDesign)
	}
	design, err := decodeDesign(req.Design)
	if err != nil {
		return nil, err
	}
	if len(design.Modules()) == 0 {
		return nil, fmt.Errorf("design has no modules")
	}
	for _, m := range design.Modules() {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("invalid design: module %s: %w", m.Name, err)
		}
	}
	return &request{
		req:    req,
		design: design,
		flow:   flow,
		key: cache.Key{
			Netlist: smartly.HashDesign(design),
			Flow:    flow.Canonical(),
			Options: optionsKey(req),
		},
		mode: mode,
	}, nil
}

// decodeDesign parses a request netlist, converting rtlil's
// programming-error panics (zero-width wires, width-mismatched
// connections, ...) into plain errors: on this path the JSON is remote
// input, not programmer-constructed structure, so a malformed body must
// become a 400, never a killed connection.
func decodeDesign(raw []byte) (d *smartly.Design, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invalid design: %v", r)
		}
	}()
	return smartly.ReadJSON(bytes.NewReader(raw))
}

// optionsKey encodes the request options that change the cached payload.
// Workers is deliberately absent: results are bit-identical for every
// worker budget.
func optionsKey(req api.OptimizeRequest) string {
	if req.Timings {
		return "timings=true"
	}
	return ""
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	pr, err := s.parseRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if pr.req.Async {
		job, err := s.submitJob(pr)
		if err != nil {
			s.writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		s.writeJSON(w, http.StatusAccepted, job)
		return
	}
	resp, err := s.execute(r.Context(), pr)
	if err != nil {
		s.writeError(w, errStatus(err), "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// errServerBusy rejects admissions beyond the queue depth (or during a
// drain); it maps to HTTP 503.
type errServerBusy struct{ reason string }

func (e errServerBusy) Error() string { return e.reason }

// errClientGone marks a synchronous request abandoned by its own
// client (connection closed while waiting for a run slot). It maps to
// 499 — nobody reads that response, but access logs must distinguish
// "the client hung up" from "the server was unavailable" (503), which
// pages someone.
type errClientGone struct{ err error }

func (e errClientGone) Error() string { return fmt.Sprintf("client disconnected: %v", e.err) }
func (e errClientGone) Unwrap() error { return e.err }

// statusClientClosedRequest is nginx's non-standard 499, the de-facto
// convention for "client closed the connection before the response".
const statusClientClosedRequest = 499

func errStatus(err error) int {
	var busy errServerBusy
	if errors.As(err, &busy) {
		return http.StatusServiceUnavailable
	}
	var gone errClientGone
	if errors.As(err, &gone) {
		return statusClientClosedRequest
	}
	// RunDesign wraps cancellation as "module x: context canceled", so
	// match the chain, not the sentinel value. Reaching here the cause
	// is the server's own run context (shutdown), not the client.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// admit reserves a queue position, failing fast when the queue is full
// or the server is draining. The returned release function gives it
// back.
func (s *Server) admit() (func(), error) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return nil, errServerBusy{reason: "server draining: not accepting new work"}
	}
	s.wg.Add(1)
	s.drainMu.Unlock()
	if n := s.admitted.Add(1); n > int64(s.cfg.QueueDepth) {
		s.admitted.Add(-1)
		s.wg.Done()
		return nil, errServerBusy{reason: fmt.Sprintf(
			"server busy: job queue full (depth %d); retry later", s.cfg.QueueDepth)}
	}
	return func() {
		s.admitted.Add(-1)
		s.wg.Done()
	}, nil
}

// execute runs one synchronous request end to end: admission, run-slot
// wait, then serve. waitCtx aborts waiting in the queue (client gone);
// the computation itself runs under the server's run context so that a
// result shared via the cache does not die with one impatient client.
func (s *Server) execute(waitCtx context.Context, pr *request) (*api.OptimizeResponse, error) {
	start := time.Now()
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()

	select {
	case s.sem <- struct{}{}:
		s.metrics.queueWait.Observe(time.Since(start))
		defer func() { <-s.sem }()
	case <-waitCtx.Done():
		// The client's own context died, not the server: report 499,
		// never the 503 that would make a monitored fleet look
		// unavailable because one caller got impatient.
		return nil, errClientGone{err: waitCtx.Err()}
	case <-s.runCtx.Done():
		return nil, s.runCtx.Err()
	}
	resp, err := s.serve(pr)
	if err == nil {
		// Only successes: folding 503 rejections or mid-run failures into
		// the latency distribution would drag the percentiles below what
		// a successful request actually experiences.
		s.metrics.optSync.Observe(time.Since(start))
	}
	return resp, err
}

// serve produces the response for a request that holds a run slot:
// from the cache, a coalesced in-flight computation, or its own run.
func (s *Server) serve(pr *request) (*api.OptimizeResponse, error) {
	if pr.mode == api.ModeDesign {
		return s.serveDesign(pr)
	}
	start := time.Now()
	var p payload
	// Decode into a fresh payload each attempt: a mid-stream failure
	// leaves partial state behind, and Unmarshal merges into (rather
	// than replaces) non-nil maps.
	decode := func(raw []byte) error {
		p = payload{}
		return json.Unmarshal(raw, &p)
	}
	status, err := s.serveCached(pr.req.NoCache, pr.key.ID(),
		func() ([]byte, error) { return s.compute(pr) }, decode)
	if err != nil {
		return nil, err
	}
	resp := &api.OptimizeResponse{
		Key:       pr.key.ID(),
		Cache:     status,
		Mode:      api.ModeWhole,
		Flow:      pr.key.Flow,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	resp.Design = p.Design
	resp.Reports = p.Reports
	s.logf("optimize flow=%q key=%s cache=%s elapsed=%s",
		pr.key.Flow, pr.key.ID()[:12], status, time.Since(start).Round(time.Microsecond))
	return resp, nil
}

// serveCached resolves one cacheable unit (a whole design, or one
// module shard): straight computation under noCache, else through
// cache.Do with coalescing. The decoded result lands via decode; a
// cached payload that no longer decodes (disk-tier damage the framing
// did not catch, or a format change across versions) is evicted and
// recomputed once — a slow miss, never a failed request. The returned
// status is "bypass", "hit" or "miss".
func (s *Server) serveCached(noCache bool, id string, compute func() ([]byte, error), decode func([]byte) error) (string, error) {
	if noCache {
		raw, err := compute()
		if err == nil {
			err = decode(raw)
		}
		return "bypass", err
	}
	for attempt := 0; ; attempt++ {
		raw, hit, err := s.cache.Do(id, compute)
		if err != nil {
			return "", err
		}
		if err := decode(raw); err != nil {
			if !hit || attempt > 0 {
				return "", fmt.Errorf("corrupt payload for %s: %w", id, err)
			}
			s.logf("evicting corrupt cached payload key=%s", id[:12])
			s.cache.Delete(id)
			continue
		}
		if hit {
			return "hit", nil
		}
		return "miss", nil
	}
}

// compute runs the flow and serializes the cacheable payload (optimized
// design + per-module reports). Engine panics on pathological netlists
// become errors: the request fails with 500 instead of a dropped
// connection, nothing is cached, and coalesced waiters are released.
func (s *Server) compute(pr *request) ([]byte, error) {
	return s.computeGuarded(func() ([]byte, error) { return s.runFlow(pr) })
}

// computeGuarded converts engine panics into errors for any compute
// function (shared by the whole-design and module-shard paths).
func (s *Server) computeGuarded(fn func() ([]byte, error)) (raw []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("optimization panicked: %v", r)
		}
	}()
	return fn()
}

// requestWorkers resolves a request's effective worker budget
// (0 = all cores, resolved downstream).
func (s *Server) requestWorkers(pr *request) int {
	if pr.req.Workers > 0 {
		return pr.req.Workers
	}
	return s.cfg.Workers
}

// progressOption converts a request's event sink into an engine
// progress option. fallbackModule labels events from single-module runs
// (whose engine context has no module name of its own).
func progressOption(pr *request, fallbackModule string) []smartly.RunOption {
	if pr.progress == nil {
		return nil
	}
	sink := pr.progress
	return []smartly.RunOption{smartly.WithProgress(func(ev smartly.PassEvent) {
		module := ev.Module
		if module == "" {
			module = fallbackModule
		}
		sink(api.JobEvent{
			Type:      api.EventPass,
			Module:    module,
			Pass:      ev.Pass,
			Calls:     ev.Calls,
			ElapsedMS: float64(ev.Last) / float64(time.Millisecond),
		})
	})}
}

func (s *Server) runFlow(pr *request) ([]byte, error) {
	workers := s.requestWorkers(pr)
	opts := []smartly.RunOption{
		smartly.WithContext(s.runCtx),
		smartly.WithWorkers(workers),
	}
	opts = append(opts, progressOption(pr, "")...)
	if pr.req.Timings {
		opts = append(opts, smartly.WithTimings())
	}
	// The design was decoded from this request's body, so it is private
	// to this computation and can be optimized in place.
	reports, err := pr.flow.RunDesign(pr.design, opts...)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, pr.design); err != nil {
		return nil, err
	}
	p := payload{Design: buf.Bytes(), Reports: map[string]api.Report{}}
	for name, rep := range reports {
		p.Reports[name] = api.FromRunReport(rep)
	}
	return json.Marshal(p)
}

// payload is the cacheable core of an OptimizeResponse.
type payload struct {
	Design  json.RawMessage       `json:"design"`
	Reports map[string]api.Report `json:"reports"`
}

// validCacheID admits exactly the ids the peer protocol can legally
// carry: plain lowercase-hex content hashes (Key.ID/ModuleKey.ID are
// 64-char SHA-256; the range leaves room for other digest sizes).
// Everything else is rejected before any tier sees it — ServeMux
// percent-decodes path values, so without this check a crafted request
// ("..%2f..%2f...") hands the disk tier an id with traversal segments
// that filepath.Join would happily clean into a path outside the cache
// directory.
func validCacheID(id string) bool {
	if len(id) < 16 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleCachePut accepts one framed cache entry pushed by a peer
// replica; bodies share the body bound of optimize requests.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validCacheID(id) {
		s.writeError(w, http.StatusBadRequest, "invalid cache id %q: want a lowercase hex content hash", id)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "reading cache entry: %v", err)
		return
	}
	val, ok := cache.Unframe(raw)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "malformed cache entry for %s", id)
		return
	}
	// PutLocal, not Put: a peer push must not echo back out to the
	// remote tier (with two replicas pointed at each other that would
	// ping-pong every entry).
	s.cache.PutLocal(id, val)
	w.WriteHeader(http.StatusNoContent)
}

// handleCacheGet serves one local cache entry to a peer replica, framed
// (magic + checksum) so transport corruption is detected exactly like
// at-rest corruption. Misses are 404, never recomputation: the peer
// protocol is a lookup tier, not a work queue.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validCacheID(id) {
		s.writeError(w, http.StatusBadRequest, "invalid cache id %q: want a lowercase hex content hash", id)
		return
	}
	val, ok := s.cache.GetLocal(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no cache entry for %s", id)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(cache.Frame(val)); err != nil {
		s.logf("writing cache entry %s: %v", id, err)
	}
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	var out []api.FlowInfo
	for _, name := range smartly.FlowNames() {
		f, err := smartly.NamedFlow(name)
		if err != nil {
			continue // unparsable registration; nothing to reflect
		}
		out = append(out, api.FlowInfo{Name: name, Script: f.String(), Canonical: f.Canonical()})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePasses(w http.ResponseWriter, r *http.Request) {
	var out []api.PassInfo
	for _, spec := range smartly.Passes() {
		info := api.PassInfo{Name: spec.Name, Summary: spec.Summary}
		for _, o := range spec.Options {
			info.Options = append(info.Options, api.OptionInfo{
				Key:      o.Key,
				Kind:     o.Kind.String(),
				Default:  o.Default,
				Positive: o.Positive,
				Help:     o.Help,
			})
		}
		out = append(out, info)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Each field is its own consistent snapshot (taken under the
	// respective mutex, or from atomic instruments); the body is
	// assembled once and written once, so a reader never sees a
	// half-updated view even under concurrent traffic.
	h := api.Health{
		Status:   "ok",
		UptimeMS: time.Since(s.start).Milliseconds(),
		Jobs:     s.jobs.stats(),
		Cache:    s.cache.Stats(),
		Metrics:  s.metricsSummary(),
	}
	if s.jobs.disk != nil {
		records, bytes := s.jobs.disk.usage()
		h.Store = &api.StoreStats{Records: records, Bytes: bytes}
	}
	s.writeJSON(w, http.StatusOK, h)
}
