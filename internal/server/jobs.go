package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"

	"repro/internal/server/api"
)

// maxRetainedJobs bounds the job store: once exceeded, the oldest
// finished jobs are forgotten (polling them then returns 404).
const maxRetainedJobs = 1024

// maxRetainedResults bounds how many finished jobs keep their full
// result payload. Payloads carry whole optimized netlists, so — unlike
// the byte-bounded result cache — retaining one per job would let a
// long-lived daemon pin gigabytes. Older finished jobs keep their
// metadata (state, error) but drop the payload; resubmitting the same
// request is served from the cache.
const maxRetainedResults = 32

// job is one async submission. Mutable state is guarded by the store
// mutex; done closes when the job reaches a terminal state.
type job struct {
	id        string
	submitted time.Time
	state     string
	errMsg    string
	result    *api.OptimizeResponse
	done      chan struct{}
}

// jobStore tracks async jobs in submission order for pruning.
type jobStore struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []*job
}

func (js *jobStore) init() { js.byID = map[string]*job{} }

// add registers a new queued job and prunes old finished ones.
func (js *jobStore) add() *job {
	buf := make([]byte, 16)
	rand.Read(buf) // never fails per crypto/rand contract
	j := &job{
		id:        hex.EncodeToString(buf),
		submitted: time.Now(),
		state:     api.JobQueued,
		done:      make(chan struct{}),
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	js.byID[j.id] = j
	js.order = append(js.order, j)
	for len(js.order) > maxRetainedJobs {
		victim := -1
		for i, old := range js.order {
			if old.state == api.JobDone || old.state == api.JobFailed {
				victim = i
				break
			}
		}
		if victim < 0 {
			break // everything still active; keep over-retaining
		}
		delete(js.byID, js.order[victim].id)
		js.order = append(js.order[:victim], js.order[victim+1:]...)
	}
	return j
}

// get returns the job by id, or nil.
func (js *jobStore) get(id string) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.byID[id]
}

// setState transitions a job; terminal states close done exactly once
// and prune payloads of older finished jobs.
func (js *jobStore) setState(j *job, state, errMsg string, result *api.OptimizeResponse) {
	js.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.result = result
	terminal := state == api.JobDone || state == api.JobFailed
	if terminal {
		js.pruneResultsLocked()
	}
	js.mu.Unlock()
	if terminal {
		close(j.done)
	}
}

// pruneResultsLocked drops the result payload of all but the most
// recent maxRetainedResults finished jobs. Caller holds mu.
func (js *jobStore) pruneResultsLocked() {
	kept := 0
	for i := len(js.order) - 1; i >= 0; i-- {
		j := js.order[i]
		if j.result == nil {
			continue
		}
		if kept++; kept > maxRetainedResults {
			j.result = nil
		}
	}
}

// snapshot renders a job's current wire form.
func (js *jobStore) snapshot(j *job) api.Job {
	js.mu.Lock()
	defer js.mu.Unlock()
	return api.Job{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		Result:      j.result,
		SubmittedAt: j.submitted,
	}
}

// stats counts jobs by state for /healthz.
func (js *jobStore) stats() api.JobStats {
	js.mu.Lock()
	defer js.mu.Unlock()
	var s api.JobStats
	for _, j := range js.order {
		switch j.state {
		case api.JobQueued:
			s.Queued++
		case api.JobRunning:
			s.Running++
		case api.JobDone:
			s.Done++
		case api.JobFailed:
			s.Failed++
		}
	}
	return s
}

// submitJob admits an async request and starts it in the background.
// Admission (and so the 503 queue bound) happens here, before the 202
// is written, so accepted jobs always hold a queue position.
func (s *Server) submitJob(pr *request) (api.Job, error) {
	release, err := s.admit()
	if err != nil {
		return api.Job{}, err
	}
	j := s.jobs.add()
	go func() {
		defer release()
		// The slot wait and the run are bounded by the server lifetime
		// only: the submitting client has already disconnected.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-s.runCtx.Done():
			s.jobs.setState(j, api.JobFailed, s.runCtx.Err().Error(), nil)
			return
		}
		s.jobs.setState(j, api.JobRunning, "", nil)
		resp, err := s.serve(pr)
		if err != nil {
			s.jobs.setState(j, api.JobFailed, err.Error(), nil)
			return
		}
		s.jobs.setState(j, api.JobDone, "", resp)
	}()
	return s.jobs.snapshot(j), nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.snapshot(j))
}
