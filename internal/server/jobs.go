package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/server/api"
)

// maxRetainedJobs bounds the job store: once exceeded, the oldest
// finished jobs are forgotten (polling them then returns 404) and their
// durable records removed.
const maxRetainedJobs = 1024

// maxRetainedResults bounds how many finished jobs keep their full
// result payload in memory. Payloads carry whole optimized netlists, so
// — unlike the byte-bounded result cache — retaining one per job would
// let a long-lived daemon pin gigabytes. Older finished jobs keep their
// metadata (state, error) and drop the in-memory payload; polling one
// re-hydrates it from the durable store, and without a store the job is
// reported as result_evicted — never "done" with a nil result.
const maxRetainedResults = 32

// maxRetainedEvents bounds a job's buffered progress events. Events are
// small, but a long fixpoint-heavy flow over a large design emits one
// per pass invocation per module; past the bound the oldest events are
// dropped (a late events subscriber resumes from what remains — the
// live tail — which is what progress streaming is for).
const maxRetainedEvents = 4096

// job is one async submission. Mutable state is guarded by the store
// mutex; done closes when the job reaches a terminal state.
type job struct {
	id        string
	submitted time.Time
	state     string
	errMsg    string
	result    *api.OptimizeResponse
	done      chan struct{}

	// finished is when the job reached its terminal state (zero while
	// pending); the job-store GC ages terminal jobs by it.
	finished time.Time

	// epoch counts the job's incarnations: 1 at submission, +1 every
	// time a restarted daemon adopts it from the durable store. Events
	// are identified by (epoch, seq) — seq restarts at 1 per
	// incarnation — so a subscriber resuming with a pre-restart
	// position is replayed from the start instead of waiting for a Seq
	// the re-run may never reach. Immutable once the job is registered.
	epoch int

	// events buffers the job's progress stream (lifecycle transitions
	// and per-pass completions); seq numbers the next event; eventc is
	// closed and replaced on every append, waking events subscribers.
	events []api.JobEvent
	seq    int
	eventc chan struct{}

	// saveMu serializes this job's durable-record writes and removals,
	// which run outside the store mutex (see setState).
	saveMu sync.Mutex
}

// jobStore tracks async jobs in submission order for pruning, with an
// optional durable backend that survives restarts.
type jobStore struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []*job
	disk  *diskJobs // nil = in-memory only

	// onTransition observes every lifecycle transition (the entered
	// state) for the metrics facility; never nil after init. Called
	// outside mu — it only touches atomic counters, but the store's
	// locks owe it nothing.
	onTransition func(state string)
}

func (js *jobStore) init(disk *diskJobs, onTransition func(state string)) {
	js.byID = map[string]*job{}
	js.disk = disk
	js.onTransition = onTransition
	if js.onTransition == nil {
		js.onTransition = func(string) {}
	}
}

// newJob allocates a job in the given state without registering it.
func newJob(id string, submitted time.Time, state string) *job {
	return &job{
		id:        id,
		submitted: submitted,
		state:     state,
		done:      make(chan struct{}),
		eventc:    make(chan struct{}),
	}
}

// add registers a new queued job, persists its record (with the
// request body, so a restart can re-run it) and prunes old finished
// jobs.
func (js *jobStore) add(request json.RawMessage) *job {
	buf := make([]byte, 16)
	rand.Read(buf) // never fails per crypto/rand contract
	j := newJob(hex.EncodeToString(buf), time.Now(), api.JobQueued)
	j.epoch = 1
	js.mu.Lock()
	pruned := js.register(j)
	js.appendEventLocked(j, api.JobEvent{Type: api.EventState, State: j.state})
	js.mu.Unlock()
	js.onTransition(j.state)
	js.saveRecord(j, jobRecord{
		ID: j.id, State: j.state, Epoch: j.epoch, SubmittedAt: j.submitted, Request: request,
	})
	js.removeRecords(pruned)
	return j
}

// adopt registers a job recovered from the durable store under its
// original id (so pollers from before the restart still resolve it).
// Terminal jobs arrive with done already closed; pending ones are
// re-persisted as queued, so a crash during recovery recovers the same
// way again. Returns nil for a duplicate id (damaged store).
func (js *jobStore) adopt(rec jobRecord) *job {
	js.mu.Lock()
	if js.byID[rec.ID] != nil {
		js.mu.Unlock()
		return nil
	}
	state := rec.State
	terminal := state == api.JobDone || state == api.JobFailed
	if !terminal {
		// A job caught mid-run restarts from the queue: the optimization
		// is deterministic and cache-backed, so re-running is safe.
		state = api.JobQueued
	}
	j := newJob(rec.ID, rec.SubmittedAt, state)
	j.errMsg = rec.Error
	// Every adoption is a new incarnation: seq restarts at 1 below, so
	// the epoch must advance — and persist — or a second restart would
	// reuse this incarnation's event ids.
	j.epoch = rec.Epoch + 1
	if terminal {
		j.finished = rec.FinishedAt
		if j.finished.IsZero() {
			// Pre-FinishedAt record: age from the restart, not from 1970
			// (which would make the GC collect it instantly).
			j.finished = time.Now()
		}
	}
	pruned := js.register(j)
	js.appendEventLocked(j, api.JobEvent{Type: api.EventState, State: state, Error: rec.Error})
	if terminal {
		close(j.done)
		// The result payload (if any) stays in the record and
		// re-hydrates on demand.
	}
	js.mu.Unlock()
	js.onTransition(state)
	rec.State = state
	rec.Epoch = j.epoch
	rec.FinishedAt = j.finished
	js.saveRecord(j, rec)
	js.removeRecords(pruned)
	return j
}

// register links a job into byID/order and prunes, returning the
// pruned jobs so the caller can remove their durable records after
// releasing the mutex. Caller holds mu.
func (js *jobStore) register(j *job) (pruned []*job) {
	js.byID[j.id] = j
	js.order = append(js.order, j)
	for len(js.order) > maxRetainedJobs {
		victim := -1
		for i, old := range js.order {
			if old.state == api.JobDone || old.state == api.JobFailed {
				victim = i
				break
			}
		}
		if victim < 0 {
			break // everything still active; keep over-retaining
		}
		pruned = append(pruned, js.order[victim])
		delete(js.byID, js.order[victim].id)
		js.order = append(js.order[:victim], js.order[victim+1:]...)
	}
	return pruned
}

// saveRecord persists one job's record outside the store mutex: the
// marshal and temp-file/rename dance can stall on a slow or full disk,
// and under js.mu that stall would freeze every poll, snapshot and
// progress append daemon-wide. saveMu keeps one job's writes ordered.
func (js *jobStore) saveRecord(j *job, rec jobRecord) {
	j.saveMu.Lock()
	js.disk.save(rec)
	j.saveMu.Unlock()
}

// removeRecords drops the durable records of pruned jobs, outside the
// store mutex for the same reason saveRecord runs there.
func (js *jobStore) removeRecords(pruned []*job) {
	for _, j := range pruned {
		j.saveMu.Lock()
		js.disk.remove(j.id)
		j.saveMu.Unlock()
	}
}

// get returns the job by id, or nil.
func (js *jobStore) get(id string) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.byID[id]
}

// recordState reports what the GC needs to know about one record's
// in-memory job: when it finished, whether it is terminal, and whether
// it exists at all (false marks the record an orphan).
func (js *jobStore) recordState(id string) (finished time.Time, terminal, exists bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j := js.byID[id]
	if j == nil {
		return time.Time{}, false, false
	}
	return j.finished, j.state == api.JobDone || j.state == api.JobFailed, true
}

// forget unregisters a terminal job (pollers get 404 afterwards) and
// returns it so the caller can remove its durable record under saveMu;
// nil if the job is gone or not terminal (live jobs are never
// forgotten).
func (js *jobStore) forget(id string) *job {
	js.mu.Lock()
	defer js.mu.Unlock()
	j := js.byID[id]
	if j == nil || (j.state != api.JobDone && j.state != api.JobFailed) {
		return nil
	}
	delete(js.byID, id)
	for i, o := range js.order {
		if o == j {
			js.order = append(js.order[:i], js.order[i+1:]...)
			break
		}
	}
	return j
}

// setState transitions a job, appends the lifecycle event, persists
// the record (outside the store mutex; a terminal record always lands
// before done closes), and on terminal states prunes in-memory
// payloads of older finished jobs.
func (js *jobStore) setState(j *job, state, errMsg string, result *api.OptimizeResponse, request json.RawMessage) {
	terminal := state == api.JobDone || state == api.JobFailed
	js.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.result = result
	if terminal {
		j.finished = time.Now()
	}
	js.appendEventLocked(j, api.JobEvent{Type: api.EventState, State: state, Error: errMsg})
	if terminal {
		js.pruneResultsLocked()
	}
	js.mu.Unlock()
	js.onTransition(state)
	rec := jobRecord{ID: j.id, State: state, Error: errMsg, Epoch: j.epoch,
		SubmittedAt: j.submitted, FinishedAt: j.finished}
	if result != nil {
		if raw, err := json.Marshal(result); err == nil {
			rec.Result = raw
		}
	}
	if !terminal {
		// Keep the request in the record while the job can still be
		// re-run by a recovery; terminal records drop it (the payload or
		// error is what matters now, and done jobs re-serve, not re-run).
		rec.Request = request
	}
	js.saveRecord(j, rec)
	if terminal {
		close(j.done)
	}
}

// appendEventLocked buffers one event and wakes subscribers. Caller
// holds mu.
func (js *jobStore) appendEventLocked(j *job, ev api.JobEvent) {
	j.seq++
	ev.Epoch = j.epoch
	ev.Seq = j.seq
	j.events = append(j.events, ev)
	if len(j.events) > maxRetainedEvents {
		j.events = j.events[len(j.events)-maxRetainedEvents:]
	}
	close(j.eventc)
	j.eventc = make(chan struct{})
}

// appendEvent buffers one progress event from a running optimization.
func (js *jobStore) appendEvent(j *job, ev api.JobEvent) {
	js.mu.Lock()
	js.appendEventLocked(j, ev)
	js.mu.Unlock()
}

// eventsSince snapshots the job's events with Seq > after, the channel
// that signals the next append, and whether the job is terminal (no
// further events will ever arrive).
func (js *jobStore) eventsSince(j *job, after int) (evs []api.JobEvent, next <-chan struct{}, terminal bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	for i := range j.events {
		if j.events[i].Seq > after {
			evs = append(evs, j.events[i:]...)
			break
		}
	}
	terminal = j.state == api.JobDone || j.state == api.JobFailed
	return evs, j.eventc, terminal
}

// pruneResultsLocked drops the in-memory result payload of all but the
// most recent maxRetainedResults finished jobs. Caller holds mu.
func (js *jobStore) pruneResultsLocked() {
	kept := 0
	for i := len(js.order) - 1; i >= 0; i-- {
		j := js.order[i]
		if j.result == nil {
			continue
		}
		if kept++; kept > maxRetainedResults {
			j.result = nil
		}
	}
}

// snapshot renders a job's current wire form. A done job whose
// in-memory payload was pruned re-hydrates it from the durable store;
// without one (or with the record gone) the job is reported in the
// distinct result_evicted state — never "done" with a nil result, which
// callers would mistake for success with no payload.
func (js *jobStore) snapshot(j *job) api.Job {
	js.mu.Lock()
	out := api.Job{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		Result:      j.result,
		SubmittedAt: j.submitted,
	}
	js.mu.Unlock()
	if out.State == api.JobDone && out.Result == nil {
		if res, ok := js.disk.loadResult(j.id); ok {
			out.Result = res
		} else {
			out.State = api.JobResultEvicted
			out.Error = "result payload evicted (finished long ago); resubmit the request — the result cache usually still holds it"
		}
	}
	return out
}

// stats counts jobs by state for /healthz.
func (js *jobStore) stats() api.JobStats {
	js.mu.Lock()
	defer js.mu.Unlock()
	var s api.JobStats
	for _, j := range js.order {
		switch j.state {
		case api.JobQueued:
			s.Queued++
		case api.JobRunning:
			s.Running++
		case api.JobDone:
			s.Done++
		case api.JobFailed:
			s.Failed++
		}
	}
	return s
}

// submitJob admits an async request and starts it in the background.
// Admission (and so the 503 queue bound) happens here, before the 202
// is written, so accepted jobs always hold a queue position.
func (s *Server) submitJob(pr *request) (api.Job, error) {
	release, err := s.admit()
	if err != nil {
		return api.Job{}, err
	}
	// Persist the request verbatim so a restart can re-run the job; a
	// marshal failure is impossible for a decoded request (RawMessage
	// design + plain fields) but would only cost durability, not the job.
	raw, _ := json.Marshal(pr.req)
	j := s.jobs.add(raw)
	s.runJob(j, pr, raw, release)
	return s.jobs.snapshot(j), nil
}

// runJob runs one admitted async job in the background, feeding its
// progress event stream. release gives back the queue position.
func (s *Server) runJob(j *job, pr *request, request json.RawMessage, release func()) {
	pr.progress = func(ev api.JobEvent) { s.jobs.appendEvent(j, ev) }
	go func() {
		defer release()
		start := time.Now()
		// The slot wait and the run are bounded by the server lifetime
		// only: the submitting client has already disconnected.
		select {
		case s.sem <- struct{}{}:
			s.metrics.queueWait.Observe(time.Since(start))
			defer func() { <-s.sem }()
		case <-s.runCtx.Done():
			s.jobs.setState(j, api.JobFailed, s.runCtx.Err().Error(), nil, nil)
			return
		}
		// The async histogram observes the run span of every completed
		// job — slot wait included, failures included: an async caller's
		// Wait experiences the whole span either way, unlike the sync
		// histogram where a fast rejection would pollute the latency of
		// served responses.
		defer func() { s.metrics.optAsync.Observe(time.Since(start)) }()
		s.jobs.setState(j, api.JobRunning, "", nil, request)
		resp, err := s.serve(pr)
		if err != nil {
			s.jobs.setState(j, api.JobFailed, err.Error(), nil, nil)
			return
		}
		s.jobs.setState(j, api.JobDone, "", resp, nil)
	}()
}

// recoverJobs replays the durable store on startup: terminal jobs are
// re-registered so they keep re-serving their payloads under their
// original ids, and queued or mid-run jobs are re-validated and
// re-submitted. Recovery runs before the listener serves, so recovered
// work holds queue positions like freshly admitted work.
func (s *Server) recoverJobs() {
	recovered, requeued := 0, 0
	for _, rec := range s.jobs.disk.load() {
		j := s.jobs.adopt(rec)
		if j == nil {
			continue
		}
		recovered++
		if rec.State == api.JobDone || rec.State == api.JobFailed {
			continue
		}
		requeued++
		var req api.OptimizeRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			s.jobs.setState(j, api.JobFailed, fmt.Sprintf("recovery: damaged request record: %v", err), nil, nil)
			continue
		}
		pr, err := s.validateRequest(req)
		if err != nil {
			s.jobs.setState(j, api.JobFailed, "recovery: "+err.Error(), nil, nil)
			continue
		}
		release, err := s.admit()
		if err != nil {
			// More surviving jobs than queue positions: fail the overflow
			// explicitly rather than over-admitting (the client's Wait
			// sees a typed failure and can resubmit).
			s.jobs.setState(j, api.JobFailed, "recovery: "+err.Error(), nil, nil)
			continue
		}
		s.runJob(j, pr, rec.Request, release)
	}
	if recovered > 0 {
		s.logf("job store: recovered %d jobs (%d re-queued) from %s",
			recovered, requeued, s.jobs.disk.dir)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.jobs.snapshot(j))
}
