package server

import (
	"sort"
	"time"
)

// The job-store GC bounds the durable store of a long-lived daemon.
// Without it every async job ever finished leaves a record file behind
// (pruning only fires past maxRetainedJobs), and a crashed prior
// incarnation can leave records and temp files nothing will ever
// clean. The GC runs once at startup — after recovery, so everything
// adoptable has been adopted and whatever records remain unowned are
// garbage by construction — and then on a background ticker when a
// retention policy (Config.JobsTTL, Config.JobsMaxBytes) is set.
//
// Three invariants keep it safe against the serving path:
//   - Live (queued or running) jobs are never collected: only terminal
//     jobs leave the in-memory store, and only after their terminal
//     record landed (setState persists before closing done).
//   - Orphan deletion cannot race a submission: add and adopt register
//     the job in memory before its record file exists, so a record
//     seen by scan whose id resolves to no in-memory job is either
//     damaged (recovery skipped it) or mid-removal by the pruner —
//     deleting it is correct in the first case and a no-op in the
//     second.
//   - Record removal serializes with that job's writes via saveMu,
//     exactly like the pruner's removeRecords.

// staleTempAge guards the background sweep from unlinking a temp file
// an in-flight save is still writing; any temp this old is a leftover
// of a crashed write. The startup sweep skips the guard — recovery has
// finished and the listener is not up, so no save can be in flight.
const staleTempAge = 15 * time.Minute

// startJobsGC runs the startup sweep and, when a retention policy is
// configured, starts the background GC goroutine (stopped by Close via
// runCtx; gcDone closes when it exits).
func (s *Server) startJobsGC() {
	if s.jobs.disk == nil {
		close(s.gcDone)
		return
	}
	s.sweepJobs(true)
	if s.cfg.JobsTTL <= 0 && s.cfg.JobsMaxBytes <= 0 {
		close(s.gcDone)
		return
	}
	interval := s.cfg.JobsGCInterval
	if interval <= 0 {
		interval = time.Minute
	}
	go func() {
		defer close(s.gcDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sweepJobs(false)
			case <-s.runCtx.Done():
				return
			}
		}
	}()
}

// sweepJobs is one GC pass: stray temp files, orphaned records, then
// the age policy, then the size policy (oldest-finished first until
// the byte budget holds).
func (s *Server) sweepJobs(startup bool) {
	d := s.jobs.disk
	now := time.Now()
	var strays, orphans, expired, overBudget int

	// terminal records surviving the age policy, candidates for the
	// size policy
	type candidate struct {
		info     recordInfo
		finished time.Time
	}
	var candidates []candidate
	var total int64

	for _, info := range d.scan() {
		if info.id == "" {
			if startup || now.Sub(info.mtime) > staleTempAge {
				d.removeStray(info.name)
				strays++
			}
			continue
		}
		finished, terminal, exists := s.jobs.recordState(info.id)
		if !exists {
			d.remove(info.id)
			orphans++
			continue
		}
		if terminal && finished.IsZero() {
			finished = info.mtime // record predates FinishedAt
		}
		if terminal && s.cfg.JobsTTL > 0 && now.Sub(finished) > s.cfg.JobsTTL {
			if s.collectJob(info.id) {
				expired++
				continue
			}
		}
		total += info.size
		if terminal {
			candidates = append(candidates, candidate{info, finished})
		}
	}

	if s.cfg.JobsMaxBytes > 0 && total > s.cfg.JobsMaxBytes {
		sort.Slice(candidates, func(i, j int) bool {
			return candidates[i].finished.Before(candidates[j].finished)
		})
		for _, c := range candidates {
			if total <= s.cfg.JobsMaxBytes {
				break
			}
			if s.collectJob(c.info.id) {
				total -= c.info.size
				overBudget++
			}
		}
	}

	s.metrics.gcCollected("stray", strays)
	s.metrics.gcCollected("orphan", orphans)
	s.metrics.gcCollected("ttl", expired)
	s.metrics.gcCollected("bytes", overBudget)
	if n := strays + orphans + expired + overBudget; n > 0 {
		s.logf("job store gc: collected %d files (%d expired, %d over budget, %d orphaned, %d stray temps)",
			n, expired, overBudget, orphans, strays)
	}
}

// collectJob forgets one terminal job from the in-memory store and
// removes its durable record; pollers get 404 afterwards, like for
// pruned jobs. Reports false when the job turned non-collectable since
// the sweep's snapshot (gone already, or somehow live again).
func (s *Server) collectJob(id string) bool {
	j := s.jobs.forget(id)
	if j == nil {
		return false
	}
	j.saveMu.Lock()
	s.jobs.disk.remove(id)
	j.saveMu.Unlock()
	return true
}
