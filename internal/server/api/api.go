// Package api defines the JSON wire types of the smartlyd HTTP API,
// shared by the server (internal/server) and the Go client (client).
// docs/api.md documents the endpoints and error codes.
package api

import (
	"encoding/json"
	"time"

	"repro"
	"repro/internal/cache"
)

// OptimizeRequest is the body of POST /v1/optimize.
type OptimizeRequest struct {
	// Design is the netlist to optimize, in the Yosys-compatible JSON
	// format (smartly.WriteJSON / yosys write_json).
	Design json.RawMessage `json:"design"`
	// Flow names a registered flow (GET /v1/flows). Mutually exclusive
	// with Script; with neither set the server's default flow runs.
	Flow string `json:"flow,omitempty"`
	// Script is a flow script ("opt_expr; satmux(conflicts=64); ...").
	Script string `json:"script,omitempty"`
	// Workers bounds the per-request worker budget of parallel engine
	// stages (0 = server default). In design mode the budget is split
	// between concurrently optimized modules and each module's
	// intra-pass stages. The optimized netlist is bit-identical for
	// every value, which is why Workers is not part of the cache key.
	Workers int `json:"workers,omitempty"`
	// Mode selects the caching granularity: ModeWhole caches the whole
	// optimized design under one key, ModeDesign shards the design into
	// per-module cache entries so a resubmission with one edited module
	// re-optimizes only that module. "" uses the server's default mode.
	// Both modes produce bit-identical designs and reports.
	Mode string `json:"mode,omitempty"`
	// Timings includes wall-clock durations in the run reports. Timed
	// responses are cached separately (the recorded timings are those
	// of the run that populated the entry).
	Timings bool `json:"timings,omitempty"`
	// NoCache bypasses the result cache entirely: no lookup, no store,
	// no request coalescing. Used by latency benchmarks.
	NoCache bool `json:"no_cache,omitempty"`
	// Async enqueues the request and returns a Job immediately; poll
	// GET /v1/jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
}

// Request/response cache-granularity modes.
const (
	// ModeWhole caches one payload per (design, flow, options) triple.
	ModeWhole = "whole"
	// ModeDesign shards the design: one cache entry per (module, flow,
	// options) triple, merged deterministically into the response.
	ModeDesign = "design"
)

// ModuleCacheStats aggregates the per-module cache outcomes of one
// design-mode request.
type ModuleCacheStats struct {
	// Hits counts modules served from the module tier (including
	// coalesced in-flight computations), Misses modules this request
	// optimized itself.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// OptimizeResponse is the body of a successful synchronous optimization
// (and the Result of a finished async Job).
type OptimizeResponse struct {
	// Key is the content-addressed cache key of the request:
	// (canonical netlist hash, normalized flow script, option set).
	Key string `json:"key"`
	// Cache reports how the response was produced: "hit" (served from
	// cache, including requests coalesced onto an identical in-flight
	// computation), "miss" (computed and stored) or "bypass"
	// (no_cache). Design-mode responses aggregate their modules: "hit"
	// when every module hit, "miss" when none did and "partial"
	// otherwise.
	Cache string `json:"cache"`
	// Mode is the cache granularity that served the request (ModeWhole
	// or ModeDesign).
	Mode string `json:"mode,omitempty"`
	// CacheByModule maps module names to their per-module cache
	// outcome ("hit", "miss" or "bypass"); design mode only.
	CacheByModule map[string]string `json:"cache_by_module,omitempty"`
	// ModuleCache aggregates CacheByModule; design mode only.
	ModuleCache *ModuleCacheStats `json:"module_cache,omitempty"`
	// Flow is the normalized flow script that ran.
	Flow string `json:"flow"`
	// ElapsedMS is the server-side wall time of this request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Design is the optimized netlist, same format as the request.
	Design json.RawMessage `json:"design"`
	// Reports maps module names to their structured run reports.
	Reports map[string]Report `json:"reports"`
}

// Report mirrors smartly.RunReport on the wire.
type Report struct {
	Changed    bool             `json:"changed"`
	DurationNS int64            `json:"duration_ns,omitempty"`
	Passes     []PassReport     `json:"passes,omitempty"`
	Fixpoints  []FixpointReport `json:"fixpoints,omitempty"`
}

// PassReport mirrors smartly.PassReport on the wire.
type PassReport struct {
	Name       string         `json:"name"`
	Calls      int            `json:"calls"`
	Changed    bool           `json:"changed,omitempty"`
	Counters   map[string]int `json:"counters,omitempty"`
	DurationNS int64          `json:"duration_ns,omitempty"`
}

// FixpointReport mirrors smartly.FixpointReport on the wire.
type FixpointReport struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	Converged  bool   `json:"converged"`
}

// FromRunReport converts an engine report to its wire form.
func FromRunReport(r smartly.RunReport) Report {
	out := Report{Changed: r.Changed, DurationNS: int64(r.Duration)}
	for _, p := range r.Passes {
		out.Passes = append(out.Passes, PassReport{
			Name:       p.Name,
			Calls:      p.Calls,
			Changed:    p.Changed,
			Counters:   p.Counters,
			DurationNS: int64(p.Duration),
		})
	}
	for _, f := range r.Fixpoints {
		out.Fixpoints = append(out.Fixpoints, FixpointReport{
			Name:       f.Name,
			Iterations: f.Iterations,
			Converged:  f.Converged,
		})
	}
	return out
}

// Counters flattens the per-pass counters into one merged map — the
// same shape as smartly.RunReport.Counters.
func (r Report) Counters() map[string]int {
	out := map[string]int{}
	for _, p := range r.Passes {
		for k, v := range p.Counters {
			out[k] += v
		}
	}
	return out
}

// Job states reported by GET /v1/jobs/{id}.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
	// JobResultEvicted is a done job whose result payload was pruned
	// from memory and cannot be re-hydrated from the durable job store
	// (no store configured, or the record is gone). It is a distinct
	// terminal state so a poller is never handed "done" with a nil
	// Result as if it were success; resubmitting the request usually
	// re-serves the payload from the result cache.
	JobResultEvicted = "result_evicted"
)

// Job is the body of an async submission (202) and of GET /v1/jobs/{id}.
type Job struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Error is set when State is "failed" or "result_evicted".
	Error string `json:"error,omitempty"`
	// Result is set when State is "done".
	Result *OptimizeResponse `json:"result,omitempty"`
	// SubmittedAt is the server-side enqueue time.
	SubmittedAt time.Time `json:"submitted_at"`
}

// Job event types streamed by GET /v1/jobs/{id}/events.
const (
	// EventState is a job lifecycle transition (queued → running →
	// done|failed).
	EventState = "state"
	// EventPass is one completed pass invocation of the running
	// optimization.
	EventPass = "pass"
)

// JobEvent is one server-sent event of GET /v1/jobs/{id}/events. Seq
// numbers events 1.. within one incarnation of a job; Epoch counts the
// incarnations (1 at submission, +1 each time a restarted daemon
// adopts the job from its durable store, which restarts Seq at 1). The
// SSE id is "epoch-seq": a client reconnecting with Last-Event-ID from
// an older epoch is replayed from the start instead of resuming past a
// Seq the new incarnation may never reach — without the epoch, a
// re-run that emits fewer events than the client already saw would
// never deliver its terminal state.
type JobEvent struct {
	Epoch int    `json:"epoch"`
	Seq   int    `json:"seq"`
	Type  string `json:"type"`
	// State and Error are set on EventState events.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Module, Pass, Calls and ElapsedMS are set on EventPass events:
	// the module being optimized, the pass that completed, how many
	// invocations of it have completed in that module, and the
	// wall-clock of the invocation that just finished.
	Module    string  `json:"module,omitempty"`
	Pass      string  `json:"pass,omitempty"`
	Calls     int     `json:"calls,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// JobStats summarizes the job store for /healthz.
type JobStats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// StoreStats describes the durable job store's on-disk footprint, so
// operators can watch the GC keep it bounded.
type StoreStats struct {
	// Records is the number of record files, Bytes their total size.
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// LatencySummary digests one latency histogram for /healthz. The full
// bucket detail is on GET /metrics; percentiles here are histogram
// estimates (within one bucket growth factor of exact).
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// MetricsSummary is the /healthz digest of the daemon's /metrics
// instruments.
type MetricsSummary struct {
	// Requests counts every HTTP request served since startup.
	Requests uint64 `json:"requests"`
	// OptimizeSync summarizes successful synchronous optimize latency
	// (admission to response ready); OptimizeAsync the run span of
	// async jobs (background start to terminal state); QueueWait the
	// run-slot wait of admitted requests.
	OptimizeSync  LatencySummary `json:"optimize_sync"`
	OptimizeAsync LatencySummary `json:"optimize_async"`
	QueueWait     LatencySummary `json:"queue_wait"`
	// SSESubscribers is the number of currently connected events
	// streams.
	SSESubscribers int64 `json:"sse_subscribers"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status   string      `json:"status"`
	UptimeMS int64       `json:"uptime_ms"`
	Jobs     JobStats    `json:"jobs"`
	Cache    cache.Stats `json:"cache"`
	// Store reports the durable job store's footprint; absent when jobs
	// are memory-only.
	Store *StoreStats `json:"store,omitempty"`
	// Metrics summarizes the /metrics instruments.
	Metrics *MetricsSummary `json:"metrics,omitempty"`
}

// FlowInfo is one entry of GET /v1/flows.
type FlowInfo struct {
	Name string `json:"name"`
	// Script is the flow's registered script, Canonical its normalized
	// cache-key form.
	Script    string `json:"script"`
	Canonical string `json:"canonical"`
}

// PassInfo is one entry of GET /v1/passes.
type PassInfo struct {
	Name    string       `json:"name"`
	Summary string       `json:"summary"`
	Options []OptionInfo `json:"options,omitempty"`
}

// OptionInfo describes one script option of a pass.
type OptionInfo struct {
	Key      string `json:"key"`
	Kind     string `json:"kind"`
	Default  string `json:"default,omitempty"`
	Positive bool   `json:"positive,omitempty"`
	Help     string `json:"help,omitempty"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}
