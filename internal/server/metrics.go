package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/server/api"
)

// The metrics facility instruments the serving path end to end:
// request counts by endpoint and status, sync/async optimize latency
// and queue-wait histograms, job lifecycle transitions, cache tier
// outcomes, job-store GC work and live SSE subscriber counts — all
// exposed on GET /metrics in the Prometheus text format and summarized
// (latency percentiles, store usage) in /healthz. Counters that mirror
// an externally maintained source (the cache's stats, the job store's
// on-disk usage) are synced at scrape time, so the hot path pays only
// its own atomic increments.

// serverMetrics is one server's instrument set.
type serverMetrics struct {
	reg *metrics.Registry

	// requests counts every served HTTP request (the labeled per
	// endpoint/status counters live in reg; this one total feeds the
	// healthz summary without walking the registry).
	requests metrics.Counter

	// optSync observes the full latency of successful synchronous
	// optimize requests — admission, queue wait and serve — the span a
	// client sees minus transport. optAsync observes an async job's run
	// span: from its background goroutine starting (queued, holding an
	// admission slot) to its terminal state.
	optSync  *metrics.Histogram
	optAsync *metrics.Histogram
	// queueWait observes the time an admitted request (sync or async)
	// waited for a run slot.
	queueWait *metrics.Histogram

	// sse gauges currently connected events subscribers.
	sse *metrics.Gauge
}

// Metric names. The smartlyd_ prefix namespaces the daemon in a shared
// Prometheus; docs/api.md documents each.
const (
	mRequests       = "smartlyd_requests_total"
	mOptimize       = "smartlyd_optimize_seconds"
	mQueueWait      = "smartlyd_queue_wait_seconds"
	mJobTransitions = "smartlyd_job_transitions_total"
	mJobs           = "smartlyd_jobs"
	mJobRecords     = "smartlyd_job_records"
	mJobStoreBytes  = "smartlyd_job_store_bytes"
	mJobsGC         = "smartlyd_jobs_gc_total"
	mSSE            = "smartlyd_sse_subscribers"
	mCacheHits      = "smartlyd_cache_hits_total"
	mCacheMisses    = "smartlyd_cache_misses_total"
	mCacheErrors    = "smartlyd_cache_errors_total"
	mCacheCoalesced = "smartlyd_cache_coalesced_total"
	mCacheEvictions = "smartlyd_cache_evictions_total"
	mCachePuts      = "smartlyd_cache_puts_total"
	mCacheEntries   = "smartlyd_cache_entries"
	mCacheBytes     = "smartlyd_cache_bytes"
	mUptime         = "smartlyd_uptime_seconds"
)

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		optSync: reg.Histogram(mOptimize,
			"optimize latency: admission to response ready (successful requests)",
			metrics.Labels{"kind": "sync"}),
		optAsync: reg.Histogram(mOptimize, "",
			metrics.Labels{"kind": "async"}),
		queueWait: reg.Histogram(mQueueWait,
			"time admitted requests waited for a run slot", nil),
		sse: reg.Gauge(mSSE, "currently connected events subscribers", nil),
	}
	return m
}

// request records one served HTTP request.
func (m *serverMetrics) request(endpoint string, status int) {
	m.requests.Inc()
	m.reg.Counter(mRequests, "HTTP requests served, by endpoint and status",
		metrics.Labels{"endpoint": endpoint, "status": strconv.Itoa(status)}).Inc()
}

// jobTransition records one job lifecycle transition (queued, running,
// done, failed — including re-queues on recovery).
func (m *serverMetrics) jobTransition(state string) {
	m.reg.Counter(mJobTransitions, "job lifecycle transitions, by entered state",
		metrics.Labels{"state": state}).Inc()
}

// gcCollected records job-store GC work by reason (ttl, bytes, orphan,
// stray).
func (m *serverMetrics) gcCollected(reason string, n int) {
	if n <= 0 {
		return
	}
	m.reg.Counter(mJobsGC, "job-store records collected by GC, by reason",
		metrics.Labels{"reason": reason}).Add(uint64(n))
}

// syncCache mirrors one cache stats snapshot into the registry. The
// stats struct is already a consistent snapshot (taken under the
// cache's own mutex), so the mirrored counters agree with each other.
func (m *serverMetrics) syncCache(st cache.Stats) {
	hit := func(tier string, v uint64) {
		m.reg.Counter(mCacheHits, "result cache hits, by tier",
			metrics.Labels{"tier": tier}).Set(v)
	}
	hit("memory", st.Hits)
	hit("disk", st.DiskHits)
	hit("remote", st.RemoteHits)
	m.reg.Counter(mCacheMisses, "result cache lookups that missed every tier", nil).Set(st.Misses)
	m.reg.Counter(mCacheErrors, "result cache tier failures, by tier",
		metrics.Labels{"tier": "disk"}).Set(st.DiskBad)
	m.reg.Counter(mCacheErrors, "", metrics.Labels{"tier": "remote"}).Set(st.RemoteErrors)
	m.reg.Counter(mCacheCoalesced, "lookups coalesced onto an identical in-flight computation", nil).Set(st.Coalesced)
	m.reg.Counter(mCacheEvictions, "memory-tier LRU evictions", nil).Set(st.Evictions)
	m.reg.Counter(mCachePuts, "values stored in the cache", nil).Set(st.Puts)
	m.reg.Gauge(mCacheEntries, "memory-tier entries", nil).Set(int64(st.Entries))
	m.reg.Gauge(mCacheBytes, "memory-tier bytes", metrics.Labels{"bound": "current"}).Set(st.Bytes)
	m.reg.Gauge(mCacheBytes, "", metrics.Labels{"bound": "max"}).Set(st.MaxBytes)
}

// syncServer mirrors the server-owned scrape-time values: job counts by
// state, durable-store usage and uptime.
func (s *Server) syncServerMetrics() {
	m := s.metrics
	js := s.jobs.stats()
	jobGauge := func(state string, v int) {
		m.reg.Gauge(mJobs, "jobs in the in-memory store, by state",
			metrics.Labels{"state": state}).Set(int64(v))
	}
	jobGauge(api.JobQueued, js.Queued)
	jobGauge(api.JobRunning, js.Running)
	jobGauge(api.JobDone, js.Done)
	jobGauge(api.JobFailed, js.Failed)
	if s.jobs.disk != nil {
		records, bytes := s.jobs.disk.usage()
		m.reg.Gauge(mJobRecords, "records in the durable job store", nil).Set(int64(records))
		m.reg.Gauge(mJobStoreBytes, "bytes in the durable job store", nil).Set(bytes)
	}
	m.reg.Gauge(mUptime, "seconds since the daemon started", nil).
		Set(int64(time.Since(s.start).Seconds()))
	m.syncCache(s.cache.Stats())
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncServerMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		s.logf("writing /metrics: %v", err)
	}
}

// metricsSummary digests the instrument set for /healthz.
func (s *Server) metricsSummary() *api.MetricsSummary {
	m := s.metrics
	return &api.MetricsSummary{
		Requests:       m.requests.Value(),
		OptimizeSync:   latencySummary(m.optSync),
		OptimizeAsync:  latencySummary(m.optAsync),
		QueueWait:      latencySummary(m.queueWait),
		SSESubscribers: m.sse.Value(),
	}
}

func latencySummary(h *metrics.Histogram) api.LatencySummary {
	sn := h.Snapshot()
	return api.LatencySummary{
		Count: sn.Count,
		P50MS: toMillis(sn.P50),
		P95MS: toMillis(sn.P95),
		P99MS: toMillis(sn.P99),
		MaxMS: toMillis(sn.Max),
	}
}

func toMillis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// flushWriter adds Flush passthrough for handlers that stream (SSE).
// It is a distinct type so a wrapped connection only advertises
// http.Flusher when the underlying one does — handleJobEvents feature-
// detects with a type assertion.
type flushWriter struct {
	*statusWriter
	f http.Flusher
}

func (w flushWriter) Flush() { w.f.Flush() }

// instrument wraps a handler to count (endpoint, status) on completion.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		var ww http.ResponseWriter = sw
		if f, ok := w.(http.Flusher); ok {
			ww = flushWriter{sw, f}
		}
		h(ww, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.metrics.request(endpoint, sw.status)
	}
}
