package sat

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzzMaxVars bounds the differential check: the reference oracle
// enumerates all 2^n assignments.
const fuzzMaxVars = 12

// parseClauseList reads the clauses of a DIMACS body into int slices
// (the reference representation), mirroring ParseDIMACS's loose
// acceptance rules.
func parseClauseList(data []byte) (clauses [][]int, maxVar int, err error) {
	var clause []int
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "p") {
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, 0, fmt.Errorf("bad token %q", tok)
			}
			if n == 0 {
				clauses = append(clauses, clause)
				clause = nil
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			if v > maxVar {
				maxVar = v
			}
			clause = append(clause, n)
		}
	}
	if len(clause) > 0 {
		return nil, 0, fmt.Errorf("dangling clause")
	}
	return clauses, maxVar, nil
}

// refSat reports whether the clause set has a satisfying assignment
// consistent with the assumptions, by exhaustive enumeration. Variables
// are 1-based DIMACS numbers; assumption literals use the same encoding.
func refSat(clauses [][]int, n int, assumptions []int) bool {
	for mask := 0; mask < 1<<uint(n); mask++ {
		value := func(lit int) bool {
			v := lit
			if v < 0 {
				v = -v
			}
			val := mask>>(uint(v)-1)&1 == 1
			if lit < 0 {
				return !val
			}
			return val
		}
		ok := true
		for _, a := range assumptions {
			if !value(a) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				if value(l) {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// toLit converts a DIMACS literal to a solver literal.
func toLit(lit int) Lit {
	v := lit
	if v < 0 {
		v = -v
	}
	return MkLit(Var(v-1), lit < 0)
}

// checkModel verifies a Sat verdict: the model must satisfy every clause
// and every assumption.
func checkModel(t *testing.T, s *Solver, clauses [][]int, assumptions []int) {
	t.Helper()
	for _, a := range assumptions {
		if !s.ValueLit(toLit(a)) {
			t.Fatalf("model violates assumption %d", a)
		}
	}
	for _, cl := range clauses {
		ok := false
		for _, l := range cl {
			if s.ValueLit(toLit(l)) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model violates clause %v", cl)
		}
	}
}

// FuzzSolverDifferential cross-checks the CDCL solver against exhaustive
// enumeration on small CNFs (<= fuzzMaxVars variables): the cnf bytes are
// a DIMACS formula, and the script bytes drive a sequence of incremental
// operations on ONE solver instance — Solve calls under varying
// assumption sets, level-0 clause additions between calls, and Reset —
// pinning the incremental contract the cone cache of the SAT-mux oracle
// relies on (sound backtracking to level 0, learnt clauses that never
// change satisfiability, models valid after any history).
func FuzzSolverDifferential(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.cnf"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no DIMACS seed corpus: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		// One seed per operation mix: plain solving, assumption rounds,
		// clause growth, reset in the middle.
		f.Add(data, []byte{0})
		f.Add(data, []byte{0, 3, 1, 2, 0, 4, 7, 1})
		f.Add(data, []byte{5, 2, 9, 3, 0, 7, 0, 1, 2, 3, 4})
	}
	f.Add([]byte("p cnf 2 2\n1 2 0\n-1 -2 0\n"), []byte{0, 1, 1, 0, 7, 0})

	f.Fuzz(func(t *testing.T, cnf []byte, script []byte) {
		clauses, maxVar, err := parseClauseList(cnf)
		if err != nil || maxVar == 0 || maxVar > fuzzMaxVars {
			t.Skip()
		}
		s, err := ParseDIMACS(bytes.NewReader(cnf))
		if err != nil {
			t.Skip()
		}
		for s.NumVars() < maxVar {
			s.NewVar()
		}
		n := maxVar

		pos := 0
		next := func() byte {
			if pos >= len(script) {
				return 0
			}
			b := script[pos]
			pos++
			return b
		}
		solves := 0
		for round := 0; round < 12 && (round == 0 || pos < len(script)); round++ {
			op := next() % 8
			switch {
			case op < 5:
				// Solve under a fresh assumption set.
				k := int(next()) % (n + 1)
				var lits []Lit
				var ref []int
				for j := 0; j < k; j++ {
					b := next()
					v := int(b)%n + 1
					if b&0x10 != 0 {
						v = -v
					}
					lits = append(lits, toLit(v))
					ref = append(ref, v)
				}
				got := s.Solve(lits...)
				want := Unsat
				if refSat(clauses, n, ref) {
					want = Sat
				}
				if got != want {
					t.Fatalf("Solve(%v) = %v, reference says %v (after %d prior solves)", ref, got, want, solves)
				}
				if got == Sat {
					checkModel(t, s, clauses, ref)
				}
				solves++
			case op < 7:
				// Grow the formula between Solve calls.
				k := int(next())%3 + 1
				var lits []Lit
				var ref []int
				for j := 0; j < k; j++ {
					b := next()
					v := int(b)%n + 1
					if b&0x10 != 0 {
						v = -v
					}
					lits = append(lits, toLit(v))
					ref = append(ref, v)
				}
				ok := s.AddClause(lits...)
				clauses = append(clauses, ref)
				if !ok && refSat(clauses, n, nil) {
					t.Fatalf("AddClause(%v) reported unsat, reference disagrees", ref)
				}
			default:
				// Drop learnt clauses; satisfiability must not move.
				s.Reset()
				if s.NumLearnts() != 0 {
					t.Fatalf("NumLearnts = %d after Reset", s.NumLearnts())
				}
			}
		}
	})
}

// TestSolverIncrementalVsFresh solves the seed corpus under many
// assumption sets, once incrementally on a shared solver and once on a
// fresh solver per query: verdicts must be identical, regardless of the
// learnt clauses the shared instance accumulates.
func TestSolverIncrementalVsFresh(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.cnf"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no DIMACS corpus: %v", err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		_, maxVar, err := parseClauseList(data)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		// Assumption sweep: each variable positively, negatively, and in
		// pairs with its successor.
		var sets [][]int
		for v := 1; v <= maxVar; v++ {
			sets = append(sets, []int{v}, []int{-v})
			if v < maxVar {
				sets = append(sets, []int{v, -(v + 1)})
			}
		}
		for i, set := range sets {
			var lits []Lit
			for _, l := range set {
				lits = append(lits, toLit(l))
			}
			fresh, err := ParseDIMACS(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			want := fresh.Solve(lits...)
			got := shared.Solve(lits...)
			if got != want {
				t.Fatalf("%s: query %d (%v): shared solver = %v, fresh = %v",
					path, i, set, got, want)
			}
		}
	}
}

// TestSolverResetKeepsFacts asserts Reset retains problem clauses and
// level-0 facts: an unsatisfiable formula stays unsatisfiable and a
// forced literal stays forced.
func TestSolverResetKeepsFacts(t *testing.T) {
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a))
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(NegLit(b), PosLit(c))
	if s.Solve() != Sat {
		t.Fatal("expected Sat")
	}
	s.Reset()
	if s.Solve(NegLit(c)) != Unsat {
		t.Fatal("level-0 chain lost after Reset")
	}
	if s.Solve() != Sat || !s.Value(c) {
		t.Fatal("forced literal lost after Reset")
	}
}

// TestSolverLearntBound asserts that repeated incremental queries cannot
// grow the learnt database without limit: Solve trims it to the
// reduction policy's working size before each search.
func TestSolverLearntBound(t *testing.T) {
	s, err := ParseDIMACS(bytes.NewReader(mustRead(t, filepath.Join("testdata", "php32.cnf"))))
	if err != nil {
		t.Fatal(err)
	}
	limit := s.NumClauses()/3 + 100
	for i := 0; i < 200; i++ {
		v := Var(i % s.NumVars())
		s.Solve(MkLit(v, i%2 == 0))
		if got := s.NumLearnts(); got > 2*limit {
			t.Fatalf("learnt DB grew to %d (limit %d) after %d queries", got, limit, i+1)
		}
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
