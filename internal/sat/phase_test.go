package sat

import (
	"math/rand"
	"testing"
)

// TestSetPhaseGuidesModel: phase hints steer decisions on unconstrained
// variables, so a hinted solve of a satisfiable formula lands on the
// hinted model.
func TestSetPhaseGuidesModel(t *testing.T) {
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b), PosLit(c))
	s.SetPhase(a, true)
	s.SetPhase(b, false)
	s.SetPhase(c, true)
	if s.Solve() != Sat {
		t.Fatal("unsat")
	}
	if !s.Value(a) || s.Value(b) || !s.Value(c) {
		t.Errorf("model (%v,%v,%v) ignored phase hints (want true,false,true)",
			s.Value(a), s.Value(b), s.Value(c))
	}
	// Hints are preferences, not constraints: a hint against the only
	// model must not break completeness.
	u := NewSolver()
	x := u.NewVar()
	u.AddClause(PosLit(x))
	u.SetPhase(x, false)
	if u.Solve() != Sat || !u.Value(x) {
		t.Error("phase hint against a forced literal changed the verdict")
	}
}

// TestInvertPhases: inverting flips the default decisions to the
// complementary assignment.
func TestInvertPhases(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b), NegLit(a)) // tautology keeps vars live
	s.SetPhase(a, true)
	s.SetPhase(b, false)
	s.InvertPhases()
	if s.Solve() != Sat {
		t.Fatal("unsat")
	}
	if s.Value(a) || !s.Value(b) {
		t.Errorf("model (%v,%v) after inversion, want (false,true)", s.Value(a), s.Value(b))
	}
}

// TestSetPhaseOutOfRange: hinting a variable the solver does not know is
// a no-op, not a panic (callers hint from external literal maps).
func TestSetPhaseOutOfRange(t *testing.T) {
	s := NewSolver()
	s.SetPhase(Var(99), true)
	if s.Solve() != Sat {
		t.Error("empty formula not sat")
	}
}

// TestRestartOffsetSoundness: starting the Luby schedule deeper (and
// hinting/inverting phases along the way) changes only the search
// trajectory; verdicts on random instances must match a brute-force
// reference exactly.
func TestRestartOffsetSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(8)
		nClauses := int(4.2*float64(n)) + rng.Intn(5)
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := NewSolver()
		s.RestartOffset = int64(rng.Intn(10))
		for i := 0; i < n; i++ {
			v := s.NewVar()
			s.SetPhase(v, rng.Intn(2) == 1)
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		if rng.Intn(2) == 1 {
			s.InvertPhases()
		}
		got := s.Solve()
		want := brute(n, cnf)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v (offset=%d)", trial, got, want, s.RestartOffset)
		}
	}
}

// TestRestartOffsetRestartCadence: a deeper schedule start restarts on
// the longer Luby intervals — the same instance solved with a large
// offset must not restart more often than with offset zero.
func TestRestartOffsetRestartCadence(t *testing.T) {
	build := func(offset int64) *Solver {
		s := NewSolver()
		s.RestartOffset = offset
		n := 6
		p := make([][]Var, n+1)
		for i := range p {
			p[i] = make([]Var, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			cl := make([]Lit, n)
			for j := 0; j < n; j++ {
				cl[j] = PosLit(p[i][j])
			}
			s.AddClause(cl...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(NegLit(p[i][j]), NegLit(p[k][j]))
				}
			}
		}
		return s
	}
	s0 := build(0)
	if s0.Solve() != Unsat {
		t.Fatal("pigeonhole sat?")
	}
	s6 := build(20)
	if s6.Solve() != Unsat {
		t.Fatal("pigeonhole sat with offset?")
	}
	if s6.Stats.Restarts > s0.Stats.Restarts {
		t.Errorf("offset 20 restarted more often than offset 0: %d > %d",
			s6.Stats.Restarts, s0.Stats.Restarts)
	}
}
