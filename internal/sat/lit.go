// Package sat implements a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver in the MiniSAT tradition: two-literal watching,
// first-UIP conflict analysis with clause minimization, VSIDS variable
// activities, phase saving, Luby restarts and learnt-clause reduction.
//
// The solver supports incremental solving under assumptions, which is how
// the smaRTLy redundancy-elimination pass asks its queries: one solver per
// sub-graph, one Solve call per (path condition, target value) pair.
package sat

// Var is a variable index. Variables are created densely from 0.
type Var int32

// Lit is a literal: variable times two, plus one if negated.
type Lit int32

// MkLit builds a literal for v, negated if neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// lbool is a lifted boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

// Result is the outcome of a Solve call.
type Result int

const (
	// Unknown means the solver gave up (conflict budget exhausted).
	Unknown Result = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

// String renders the result.
func (r Result) String() string {
	switch r {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}
