package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// Variables are created densely: DIMACS variable i becomes Var(i-1).
// Comment lines and the problem line are accepted loosely; clauses may
// span lines and must be 0-terminated.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := NewSolver()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var clause []Lit
	ensure := func(v int) error {
		if v <= 0 {
			return fmt.Errorf("sat: bad DIMACS variable %d", v)
		}
		for s.NumVars() < v {
			s.NewVar()
		}
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			continue // header is informational; variables grow on demand
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad DIMACS token %q", tok)
			}
			if n == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			if err := ensure(v); err != nil {
				return nil, err
			}
			clause = append(clause, MkLit(Var(v-1), n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(clause) > 0 {
		return nil, fmt.Errorf("sat: DIMACS input ends inside a clause")
	}
	return s, nil
}

// WriteDIMACS serializes the solver's problem clauses (not learnt ones)
// in DIMACS format. Unit facts asserted at level 0 are emitted as unit
// clauses, and a trivially-unsatisfiable solver emits the empty clause,
// so the written formula is equisatisfiable with the solver state.
func WriteDIMACS(w io.Writer, s *Solver) error {
	if len(s.trailLim) != 0 {
		return fmt.Errorf("sat: WriteDIMACS called during solving")
	}
	bw := bufio.NewWriter(w)
	nClauses := len(s.clauses) + len(s.trail)
	if !s.ok {
		nClauses++
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), nClauses)
	emit := func(lits []Lit) {
		for _, l := range lits {
			n := int(l.Var()) + 1
			if l.Sign() {
				n = -n
			}
			fmt.Fprintf(bw, "%d ", n)
		}
		fmt.Fprintln(bw, 0)
	}
	for _, l := range s.trail {
		emit([]Lit{l})
	}
	for _, c := range s.clauses {
		emit(c.lits)
	}
	if !s.ok {
		fmt.Fprintln(bw, 0) // empty clause
	}
	return bw.Flush()
}
