package sat

// varHeap is a max-heap of variables ordered by VSIDS activity, with an
// index table for decrease/increase-key (MiniSAT's order heap).
type varHeap struct {
	s       *Solver
	heap    []Var
	indices []int32 // position+1 in heap; 0 = absent
}

func (h *varHeap) better(a, b Var) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] != 0
}

func (h *varHeap) insert(v Var) {
	for int(v) >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = int32(len(h.heap))
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v Var) {
	if h.contains(v) {
		h.up(int(h.indices[v]) - 1)
	}
}

func (h *varHeap) removeMin() Var {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[top] = 0
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 1
		h.down(0)
	}
	return top
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.better(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = int32(i + 1)
		i = p
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.heap) {
			break
		}
		c := l
		if r < len(h.heap) && h.better(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.better(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = int32(i + 1)
		i = c
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}
