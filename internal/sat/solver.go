package sat

import "sort"

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// solvers with NewSolver.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher

	assigns  []lbool
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    varHeap
	polarity []bool
	seen     []byte

	claInc float64

	model []lbool // snapshot of assigns at the last Sat result

	ok bool

	// MaxConflicts bounds the work of one Solve call; <= 0 means
	// unlimited. When the budget is exhausted Solve returns Unknown.
	MaxConflicts int64

	// RestartOffset starts each Solve call's Luby restart schedule that
	// many positions into the sequence, so a retry under a remaining
	// budget begins with a long restart interval instead of replaying
	// the short early ones. 0 is the standard schedule.
	RestartOffset int64

	// Statistics, cumulative across Solve calls.
	Stats struct {
		Conflicts    int64
		Decisions    int64
		Propagations int64
		Restarts     int64
		Learnt       int64
	}
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	s.order.s = s
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learnt clauses currently retained.
// Learnt clauses survive between Solve calls (they are implied by the
// problem clauses, so reusing them across assumption sets is sound) and
// are trimmed by the activity-based reduction.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Reset drops every learnt clause, keeping the problem clauses and the
// level-0 facts already derived from them. It is the eviction path for
// long-lived solvers: after a string of budget-exceeded Solve calls the
// learnt database carries conflict analysis of abandoned searches, and
// callers may prefer to restart clause learning from a clean slate
// without re-encoding the problem. Statistics are kept (cumulative).
func (s *Solver) Reset() {
	s.backtrackTo(0)
	// Level-0 assignments may cite learnt clauses as reasons; the facts
	// themselves are formula-implied, so forget the derivations.
	for _, l := range s.trail {
		s.reason[l.Var()] = nil
	}
	for _, c := range s.learnts {
		s.detach(c)
	}
	s.learnts = s.learnts[:0]
}

// SetPhase sets the saved phase of v: the next time the search branches
// on v it tries value first. Solving overwrites phases as usual (phase
// saving), so hints steer the early search without constraining it —
// the classic use is seeding the solver with a near-model counterexample
// pattern from simulation.
func (s *Solver) SetPhase(v Var, value bool) {
	if int(v) < len(s.polarity) {
		// polarity holds the sign of the decision literal: true decides
		// the variable false.
		s.polarity[v] = !value
	}
}

// InvertPhases flips every saved phase, sending the next search toward
// the complementary region of the assignment space — the cheap
// diversification for a portfolio retry without an external hint.
func (s *Solver) InvertPhases() {
	for i := range s.polarity {
		s.polarity[i] = !s.polarity[i]
	}
}

// NewVar creates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true) // default phase: false
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return v.neg()
	}
	return v
}

// Value returns the model value of v after a Sat result.
func (s *Solver) Value(v Var) bool {
	return int(v) < len(s.model) && s.model[v] == lTrue
}

// ValueLit returns the model value of literal l after a Sat result.
func (s *Solver) ValueLit(l Lit) bool {
	v := s.Value(l.Var())
	if l.Sign() {
		return !v
	}
	return v
}

// AddClause adds a clause (a disjunction of literals). It returns false if
// the formula is now trivially unsatisfiable. Clauses may only be added at
// decision level 0, i.e. between Solve calls.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause called during solving")
	}
	// Sort, dedupe, drop false literals, detect tautologies.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		switch {
		case s.value(l) == lTrue || l == prev.Not():
			return true // satisfied at level 0 or tautology
		case s.value(l) == lFalse || l == prev:
			continue
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0].Not(), c.lits[1].Not()
	s.watches[w0] = append(s.watches[w0], watcher{c, c.lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Sign())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Make sure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				conflict = c
				// Copy remaining watchers and stop.
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // reserve slot for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.bumpVar(v)
				s.seen[v] = 1
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Next literal to look at.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: drop literals whose reason is subsumed. Keep
	// the pre-minimization set so every seen flag is cleared below.
	toClear := append([]Lit(nil), learnt...)
	minimized := learnt[:1]
	for _, l := range learnt[1:] {
		if !s.litRedundant(l) {
			minimized = append(minimized, l)
		}
	}
	learnt = minimized

	// Find backtrack level (max level among the non-asserting lits).
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	for _, l := range toClear {
		s.seen[l.Var()] = 0
	}
	return learnt, btLevel
}

// litRedundant reports whether l is implied by the other literals marked
// in seen (local minimization: every literal of l's reason must be seen or
// at level 0).
func (s *Solver) litRedundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.seen[q.Var()] == 0 && s.level[q.Var()] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.polarity[v] = l.Sign() // phase saving
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

func (s *Solver) pickBranchVar() Var {
	for !s.order.empty() {
		v := s.order.removeMin()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB removes roughly half of the learnt clauses, keeping the most
// active ones and clauses currently used as reasons.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		return s.learnts[i].activity > s.learnts[j].activity
	})
	locked := map[*clause]bool{}
	for _, c := range s.reason {
		if c != nil {
			locked[c] = true
		}
	}
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if i < limit || locked[c] || len(c.lits) == 2 {
			keep = append(keep, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = keep
}

// luby computes the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	// Find the finite subsequence containing x and its size.
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Solve determines satisfiability of the clause set under the given
// assumption literals. It returns Sat, Unsat, or Unknown when
// MaxConflicts is exceeded. After Sat, Value/ValueLit read the model.
func (s *Solver) Solve(assumptions ...Lit) Result {
	if !s.ok {
		return Unsat
	}
	defer s.backtrackTo(0)

	conflictsAtStart := s.Stats.Conflicts
	budget := s.MaxConflicts
	restartNum := s.RestartOffset
	learntLimit := len(s.clauses)/3 + 100
	if len(s.learnts) > learntLimit {
		// Learnt clauses retained from earlier Solve calls: bound the
		// database before searching so repeated incremental queries on
		// one solver cannot grow it without limit.
		s.reduceDB()
	}

	for {
		restartNum++
		restartBudget := luby(restartNum) * 100
		res := s.search(assumptions, restartBudget, &learntLimit, conflictsAtStart, budget)
		if res == Sat {
			s.model = append(s.model[:0], s.assigns...)
			return res
		}
		if res == Unsat {
			return res
		}
		if budget > 0 && s.Stats.Conflicts-conflictsAtStart >= budget {
			return Unknown
		}
		s.Stats.Restarts++
		s.backtrackTo(0)
	}
}

// search runs CDCL until sat, unsat, restart budget or global budget.
func (s *Solver) search(assumptions []Lit, nConflicts int64, learntLimit *int, conflStart, budget int64) Result {
	var localConfl int64
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			localConfl++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				// Unit learnt clause: backtracked to level 0. A
				// contradiction here is global unsatisfiability.
				if s.value(learnt[0]) == lFalse {
					s.ok = false
					return Unsat
				}
				if s.value(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], nil)
				}
			} else {
				c := &clause{lits: learnt, learnt: true, activity: s.claInc}
				s.learnts = append(s.learnts, c)
				s.Stats.Learnt++
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVar()
			s.decayClause()
			if localConfl >= nConflicts {
				return Unknown // restart
			}
			if budget > 0 && s.Stats.Conflicts-conflStart >= budget {
				return Unknown
			}
			continue
		}

		if len(s.learnts) > *learntLimit {
			s.reduceDB()
			*learntLimit += *learntLimit / 10
		}

		// Place assumptions as decisions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied; open an empty level to keep the
				// level↔assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(a, nil)
			continue
		}

		v := s.pickBranchVar()
		if v < 0 {
			return Sat
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, s.polarity[v]), nil)
	}
}
