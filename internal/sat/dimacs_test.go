package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c sample instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Errorf("vars = %d", s.NumVars())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	// -1 forces v1 false; clause (1 -2) then forces v2 false; (2 3)
	// forces v3 true.
	if s.Value(0) || s.Value(1) || !s.Value(2) {
		t.Errorf("model: %v %v %v", s.Value(0), s.Value(1), s.Value(2))
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	src := "p cnf 1 2\n1 0\n-1 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Error("contradiction not unsat")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, src := range []string{
		"p cnf 1 1\n1 x 0\n",
		"p cnf 1 1\n1 2", // unterminated clause
	} {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// TestDIMACSRoundTrip: write→parse preserves satisfiability and models
// on random formulas.
func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		s := NewSolver()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for i := 0; i < 3*n; i++ {
			cl := make([]Lit, 1+rng.Intn(3))
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			if !s.AddClause(cl...) {
				break
			}
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, s); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		r1, r2 := s.Solve(), s2.Solve()
		if r1 != r2 {
			t.Fatalf("trial %d: original %v, round-tripped %v", trial, r1, r2)
		}
	}
}
