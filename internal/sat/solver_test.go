package sat

import (
	"math/rand"
	"testing"
)

func TestLitBasics(t *testing.T) {
	v := Var(3)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Error("Var() wrong")
	}
	if p.Sign() || !n.Sign() {
		t.Error("Sign() wrong")
	}
	if p.Not() != n || n.Not() != p {
		t.Error("Not() wrong")
	}
	if MkLit(v, true) != n || MkLit(v, false) != p {
		t.Error("MkLit wrong")
	}
}

func TestTrivialSat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.Value(a) {
		t.Error("model has a=false")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if ok := s.AddClause(NegLit(a)); ok {
		t.Error("AddClause of contradiction returned true")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewSolver()
	if s.AddClause() {
		t.Error("empty clause accepted")
	}
	if s.Solve() != Unsat {
		t.Error("not unsat after empty clause")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	if !s.AddClause(PosLit(a), NegLit(a)) {
		t.Error("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Error("tautology stored")
	}
	if s.Solve() != Sat {
		t.Error("tautology-only not sat")
	}
}

func TestImplicationChain(t *testing.T) {
	s := NewSolver()
	const n = 50
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1])) // v_i -> v_{i+1}
	}
	s.AddClause(PosLit(vars[0]))
	if s.Solve() != Sat {
		t.Fatal("chain unsat")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("v%d should be true", i)
		}
	}
	// Forcing the last variable false makes it unsat.
	if s.Solve(NegLit(vars[n-1])) != Unsat {
		t.Error("chain with contradicting assumption not unsat")
	}
	// The solver is reusable after an unsat-under-assumptions call.
	if s.Solve() != Sat {
		t.Error("solver not reusable")
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// (a | b) & (~a | c)
	s.AddClause(PosLit(a), PosLit(b))
	s.AddClause(NegLit(a), PosLit(c))
	if s.Solve(PosLit(a), NegLit(c)) != Unsat {
		t.Error("a & ~c should be unsat")
	}
	if s.Solve(PosLit(a)) != Sat {
		t.Error("a should be sat")
	}
	if !s.Value(c) {
		t.Error("model must have c under assumption a")
	}
	if s.Solve(NegLit(a), NegLit(b)) != Unsat {
		t.Error("~a & ~b should be unsat")
	}
	_ = b
}

// Pigeonhole principle PHP(n+1, n) is unsatisfiable and requires real
// conflict analysis to prove.
func TestPigeonhole(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		s := NewSolver()
		// p[i][j]: pigeon i in hole j.
		p := make([][]Var, n+1)
		for i := range p {
			p[i] = make([]Var, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		// Every pigeon in some hole.
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = PosLit(p[i][j])
			}
			s.AddClause(lits...)
		}
		// No two pigeons share a hole.
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(NegLit(p[i1][j]), NegLit(p[i2][j]))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want UNSAT", n+1, n, got)
		}
	}
}

// brute checks satisfiability of a CNF over <= 20 vars by enumeration.
func brute(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				bit := (m>>uint(l.Var()))&1 == 1
				if bit != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce cross-checks the solver against
// exhaustive enumeration on random 3-SAT instances around the phase
// transition.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		n := 5 + rng.Intn(8)
		nClauses := int(4.2*float64(n)) + rng.Intn(5)
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		s := NewSolver()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := brute(n, cnf)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v (n=%d, clauses=%d)", trial, got, want, n, nClauses)
		}
		if got == Sat {
			// Verify the model actually satisfies the formula.
			for ci, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.ValueLit(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("trial %d: model does not satisfy clause %d", trial, ci)
				}
			}
		}
	}
}

// TestRandomWithAssumptions cross-checks Solve-under-assumptions against
// brute force with the assumptions added as unit clauses.
func TestRandomWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 80; trial++ {
		n := 5 + rng.Intn(6)
		nClauses := 3 * n
		var cnf [][]Lit
		for i := 0; i < nClauses; i++ {
			cl := make([]Lit, 1+rng.Intn(3))
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		var assumptions []Lit
		seen := map[Var]bool{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			v := Var(rng.Intn(n))
			if seen[v] {
				continue
			}
			seen[v] = true
			assumptions = append(assumptions, MkLit(v, rng.Intn(2) == 1))
		}
		s := NewSolver()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		okAdd := true
		for _, cl := range cnf {
			okAdd = s.AddClause(cl...)
			if !okAdd {
				break
			}
		}
		var got Result
		if okAdd {
			got = s.Solve(assumptions...)
		} else {
			got = Unsat
		}
		full := append([][]Lit{}, cnf...)
		for _, a := range assumptions {
			full = append(full, []Lit{a})
		}
		want := brute(n, full)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v", trial, got, want)
		}
		// The solver must stay reusable: solve again without assumptions.
		if okAdd {
			got2 := s.Solve()
			want2 := brute(n, cnf)
			if (got2 == Sat) != want2 {
				t.Fatalf("trial %d: reuse solver=%v brute=%v", trial, got2, want2)
			}
		}
	}
}

func TestMaxConflictsUnknown(t *testing.T) {
	// A hard pigeonhole instance with a tiny conflict budget must give up.
	n := 7
	s := NewSolver()
	p := make([][]Var, n+1)
	for i := range p {
		p[i] = make([]Var, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = PosLit(p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(NegLit(p[i1][j]), NegLit(p[i2][j]))
			}
		}
	}
	s.MaxConflicts = 10
	if got := s.Solve(); got != Unknown {
		t.Errorf("budgeted solve = %v, want Unknown", got)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestAddClauseDuringSolvePanics(t *testing.T) {
	// AddClause at a non-zero decision level must panic; we simulate by
	// opening a level manually.
	s := NewSolver()
	a := s.NewVar()
	s.trailLim = append(s.trailLim, 0)
	defer func() {
		if recover() == nil {
			t.Error("AddClause during solving did not panic")
		}
	}()
	s.AddClause(PosLit(a))
}

func TestResultString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Result.String wrong")
	}
}
