package smartly

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func parseTestdata(t *testing.T, name string) *Design {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseVerilog(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFlowRunEndToEnd(t *testing.T) {
	flow, err := ParseFlow("fixpoint { opt_expr; satmux(conflicts=500); opt_clean }")
	if err != nil {
		t.Fatal(err)
	}
	d := parseTestdata(t, "fig3.v")
	m := d.Top()
	orig := m.Clone()
	before, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flow.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed {
		t.Error("flow changed nothing")
	}
	after, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("area %d -> %d, expected reduction", before, after)
	}
	if err := CheckEquivalence(orig, m); err != nil {
		t.Fatalf("flow result not equivalent: %v", err)
	}
	if p := rep.Pass("smartly_satmux"); p == nil || p.Calls == 0 {
		t.Errorf("satmux pass missing from report: %+v", rep.Passes)
	}
	if len(rep.Fixpoints) != 1 || rep.Fixpoints[0].Iterations == 0 {
		t.Errorf("fixpoint report missing: %+v", rep.Fixpoints)
	}
	// Timings are stripped by default for deterministic reports.
	if rep.Duration != 0 {
		t.Error("default report carries wall time")
	}
}

func TestFlowWithTimings(t *testing.T) {
	flow, err := NamedFlow("yosys")
	if err != nil {
		t.Fatal(err)
	}
	d := parseTestdata(t, "case4.v")
	rep, err := flow.Run(d.Top(), WithTimings())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration == 0 {
		t.Error("WithTimings left total duration zero")
	}
	sum := false
	for _, p := range rep.Passes {
		if p.Duration > 0 {
			sum = true
		}
	}
	if !sum {
		t.Error("WithTimings left every pass duration zero")
	}
}

func TestFlowWithWorkersDeterministic(t *testing.T) {
	flow, err := NamedFlow("full")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (RunReport, []byte) {
		d := parseTestdata(t, "case4.v")
		rep, err := flow.Run(d.Top(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, d); err != nil {
			t.Fatal(err)
		}
		return rep, buf.Bytes()
	}
	repSeq, jsonSeq := run(1)
	repPar, jsonPar := run(8)
	if !reflect.DeepEqual(repSeq, repPar) {
		t.Errorf("reports differ by worker count:\n%v\nvs\n%v", repSeq, repPar)
	}
	if !bytes.Equal(jsonSeq, jsonPar) {
		t.Error("netlists differ by worker count")
	}
}

func TestFlowWithLogfAndContext(t *testing.T) {
	flow, err := NamedFlow("yosys")
	if err != nil {
		t.Fatal(err)
	}
	var lines int
	d := parseTestdata(t, "fig3.v")
	if _, err := flow.Run(d.Top(),
		WithLogf(func(string, ...any) { lines++ })); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("WithLogf sink never called")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d2 := parseTestdata(t, "fig3.v")
	if _, err := flow.Run(d2.Top(), WithContext(ctx)); err == nil {
		t.Error("canceled flow run reported success")
	}
}

func TestFlowRunDesign(t *testing.T) {
	flow, err := NamedFlow("full")
	if err != nil {
		t.Fatal(err)
	}
	design, err := ParseVerilog(twoModuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := flow.RunDesign(design, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports for %d modules, want 2", len(reports))
	}
	for name, rep := range reports {
		if !rep.Changed {
			t.Errorf("module %s: nothing optimized", name)
		}
		if len(rep.Passes) == 0 {
			t.Errorf("module %s: empty per-pass report", name)
		}
	}
}

// TestRunDesignLogfSerialized: the shared Logf sink must be safe to use
// from a non-thread-safe closure even when modules run concurrently
// (asserted under -race: the append below is unsynchronized).
func TestRunDesignLogfSerialized(t *testing.T) {
	flow, err := NamedFlow("full")
	if err != nil {
		t.Fatal(err)
	}
	design, err := ParseVerilog(twoModuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	_, err = flow.RunDesign(design, WithWorkers(4),
		WithLogf(func(format string, args ...any) {
			lines = append(lines, format)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("no log lines from RunDesign")
	}
}

// TestPipelineShimEquivalence: every legacy Pipeline value must produce
// a bit-identical netlist and identical counters to its named flow on
// the testdata designs (the enum is a shim over the flow API).
func TestPipelineShimEquivalence(t *testing.T) {
	for _, file := range []string{"fig3.v", "case4.v"} {
		for _, p := range []Pipeline{PipelineYosys, PipelineSAT, PipelineRebuild, PipelineFull} {
			dEnum := parseTestdata(t, file)
			rEnum, err := Optimize(dEnum.Top(), p)
			if err != nil {
				t.Fatalf("%s/%s: Optimize: %v", file, p, err)
			}
			flow, err := NamedFlow(p.String())
			if err != nil {
				t.Fatalf("%s/%s: NamedFlow: %v", file, p, err)
			}
			dFlow := parseTestdata(t, file)
			rFlow, err := flow.Run(dFlow.Top())
			if err != nil {
				t.Fatalf("%s/%s: flow.Run: %v", file, p, err)
			}
			if rEnum.Changed != rFlow.Changed ||
				!reflect.DeepEqual(rEnum.Details, rFlow.Counters()) {
				t.Errorf("%s/%s: counters differ: enum %v, flow %v",
					file, p, rEnum.Details, rFlow.Counters())
			}
			var a, b bytes.Buffer
			if err := WriteJSON(&a, dEnum); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&b, dFlow); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("%s/%s: netlist differs between enum shim and named flow", file, p)
			}
		}
	}
}

func TestNamedFlowsAndRegistry(t *testing.T) {
	names := FlowNames()
	if !reflect.DeepEqual(names, []string{"datapath", "full", "rebuild", "sat", "seq", "yosys"}) {
		t.Errorf("FlowNames = %v", names)
	}
	if _, err := NamedFlow("bogus"); err == nil {
		t.Error("unknown named flow accepted")
	}
	want := map[string]bool{
		"opt_expr": false, "opt_muxtree": false, "opt_clean": false,
		"opt_reduce": false, "satmux": false, "rebuild": false, "smartly": false,
		"opt_egraph": false, "opt_dff": false,
	}
	for _, spec := range Passes() {
		if _, ok := want[spec.Name]; ok {
			want[spec.Name] = true
		}
		if spec.Summary == "" {
			t.Errorf("pass %s has no summary", spec.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("pass %s missing from registry", name)
		}
	}
}

// TestEveryRegisteredPassConstructibleFromScript: acceptance criterion —
// each registered pass plus the fixpoint wrapper builds from a script.
func TestEveryRegisteredPassConstructibleFromScript(t *testing.T) {
	for _, spec := range Passes() {
		flow, err := ParseFlow(spec.Name)
		if err != nil {
			t.Errorf("ParseFlow(%q): %v", spec.Name, err)
			continue
		}
		if got := flow.String(); got != spec.Name {
			t.Errorf("String() = %q, want %q", got, spec.Name)
		}
	}
	if _, err := ParseFlow("fixpoint(iters=2) { opt_expr }"); err != nil {
		t.Errorf("fixpoint wrapper: %v", err)
	}
}

func TestFacadeIO(t *testing.T) {
	d := parseTestdata(t, "fig3.v")
	var js bytes.Buffer
	if err := WriteJSON(&js, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Top() == nil || back.Top().NumCells() != d.Top().NumCells() {
		t.Error("JSON round trip lost cells")
	}
	var v strings.Builder
	if err := WriteVerilog(&v, d.Top()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.String(), "module") {
		t.Error("WriteVerilog produced no module")
	}
	st := CollectStats(d.Top())
	if st.NumCells != d.Top().NumCells() || st.NumCells == 0 {
		t.Errorf("CollectStats = %+v", st)
	}
}

func TestParseFlowErrorsAtFacade(t *testing.T) {
	if _, err := ParseFlow("satmux(conflicts=many)"); err == nil ||
		!strings.Contains(err.Error(), "script:1:8") {
		t.Errorf("bad value error: %v", err)
	}
	if _, err := ParseFlow("optexpr"); err == nil ||
		!strings.Contains(err.Error(), "unknown pass") {
		t.Errorf("unknown pass error: %v", err)
	}
}
