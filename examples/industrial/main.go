// Industrial reproduces the paper's §IV-B experiment at example scale:
// an industrial-style netlist (selection-logic heavy, controls logically
// dependent rather than identical) where the Yosys baseline barely
// helps and smaRTLy removes nearly half of the remaining AIG area.
//
// Run with: go run ./examples/industrial [-scale 0.2] [-points 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/rtlil"
)

func main() {
	scale := flag.Float64("scale", 0.15, "circuit scale factor")
	points := flag.Int("points", 2, "number of industrial test points")
	flag.Parse()

	fmt.Printf("%-8s %10s %10s %10s %10s\n", "point", "original", "yosys", "smartly", "extra")
	var sum float64
	for p := 0; p < *points; p++ {
		m := smartly.GenerateIndustrial(p, *scale)
		stats := rtlil.CollectStats(m)
		orig, err := smartly.Area(m)
		if err != nil {
			log.Fatal(err)
		}

		areas := map[smartly.Pipeline]int{}
		for _, pipe := range []smartly.Pipeline{smartly.PipelineYosys, smartly.PipelineFull} {
			work := m.Clone()
			if _, err := smartly.Optimize(work, pipe); err != nil {
				log.Fatal(err)
			}
			a, err := smartly.Area(work)
			if err != nil {
				log.Fatal(err)
			}
			areas[pipe] = a
		}
		extra := 100 * float64(areas[smartly.PipelineYosys]-areas[smartly.PipelineFull]) /
			float64(areas[smartly.PipelineYosys])
		sum += extra
		fmt.Printf("%-8d %10d %10d %10d %9.1f%%   (%d cells, %d muxes)\n",
			p, orig, areas[smartly.PipelineYosys], areas[smartly.PipelineFull], extra,
			stats.NumCells, stats.NumMuxes)
	}
	fmt.Printf("\naverage extra reduction vs Yosys: %.1f%% (paper reports 47.2%%)\n",
		sum/float64(*points))
}
