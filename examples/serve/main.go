// Serve: optimization as a service. Starts an in-process smartlyd
// serving stack (the same internal/server + internal/cache that
// cmd/smartlyd runs), optimizes a design through the HTTP API with the
// Go client, and shows the second identical request being answered
// from the content-addressed result cache.
//
// Run with: go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"repro"
	"repro/client"
	"repro/internal/server"
)

const src = `
module demo(input s, input r, input [7:0] a, input [7:0] b,
            input [7:0] c, output [7:0] y);
  assign y = s ? ((s | r) ? a : b) : c;
endmodule`

func main() {
	// An in-process daemon; `go run ./cmd/smartlyd` serves the same API
	// on a real port.
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	c := client.New(ts.URL)
	ctx := context.Background()

	flows, err := c.Flows(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flows served by the daemon:")
	for _, f := range flows {
		fmt.Printf("  %-8s %s\n", f.Name, f.Script)
	}

	design, err := smartly.ParseVerilog(src)
	if err != nil {
		log.Fatal(err)
	}
	before, _ := smartly.Area(design.Top())

	// First submission: a cache miss, the engine runs.
	out, resp, err := c.OptimizeDesign(ctx, design, "full", "")
	if err != nil {
		log.Fatal(err)
	}
	after, _ := smartly.Area(out.Top())
	fmt.Printf("\nfirst request:  cache=%-4s area %d -> %d (%.1fms)\n",
		resp.Cache, before, after, resp.ElapsedMS)

	// Same netlist, same flow: answered from the cache. The key is
	// content-addressed, so any equivalent serialization would hit too.
	_, resp2, err := c.OptimizeDesign(ctx, design, "full", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second request: cache=%-4s key=%s... (%.1fms)\n",
		resp2.Cache, resp2.Key[:12], resp2.ElapsedMS)

	h, err := c.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhealthz: %d cache entries, %d hits, %d misses\n",
		h.Cache.Entries, h.Cache.Hits, h.Cache.Misses)
}
