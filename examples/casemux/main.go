// Casemux walks through the paper's §III restructuring example: the
// Listing 1 case statement elaborates into an eq+mux structure
// (Figures 5/6) which muxtree restructuring rebuilds into three muxes
// controlled directly by the selector bits (Figure 7), deleting the
// comparison gates. Listing 2 shows the casez variant and the effect of
// the greedy variable assignment.
//
// Run with: go run ./examples/casemux
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/bdd"
	"repro/internal/rtlil"
)

const listing1 = `
module listing1(input [1:0] s, input [3:0] p0, input [3:0] p1,
                input [3:0] p2, input [3:0] p3, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule`

const listing2 = `
module listing2(input [2:0] s, input [3:0] p0, input [3:0] p1,
                input [3:0] p2, input [3:0] p3, output reg [3:0] y);
  always @(*) begin
    casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      3'b001: y = p2;
      default: y = p3;
    endcase
  end
endmodule`

func main() {
	for name, src := range map[string]string{"Listing 1": listing1, "Listing 2": listing2} {
		design, err := smartly.ParseVerilog(src)
		if err != nil {
			log.Fatal(err)
		}
		m := design.Top()
		orig := m.Clone()
		before, _ := smartly.Area(m)
		muxesBefore, eqsBefore := count(m)

		if _, err := smartly.Optimize(m, smartly.PipelineRebuild); err != nil {
			log.Fatal(err)
		}
		if err := smartly.CheckEquivalence(orig, m); err != nil {
			log.Fatalf("%s: rebuild unsound: %v", name, err)
		}
		after, _ := smartly.Area(m)
		muxesAfter, eqsAfter := count(m)

		fmt.Printf("%s: %d mux + %d eq  ->  %d mux + %d eq   (AIG area %d -> %d)\n",
			name, muxesBefore, eqsBefore, muxesAfter, eqsAfter, before, after)
	}

	// The ADD heuristic behind the rebuild, on Listing 2's pattern
	// table: the paper's good assignment (S2 first) gives 3 muxes, the
	// bad one (S0 first) expands to a 7-mux tree.
	patterns := []bdd.Pattern{
		bdd.ParsePattern("1zz", 0),
		bdd.ParsePattern("01z", 1),
		bdd.ParsePattern("001", 2),
		bdd.ParsePattern("zzz", 3),
	}
	greedy := bdd.BuildGreedy(patterns, 3)
	bad := bdd.BuildOrdered(patterns, 3, []int{0, 1, 2})
	fmt.Printf("\nListing 2 ADD: greedy assignment %d muxes, bad assignment %d muxes (tree form)\n",
		greedy.CountNodes(), bad.CountTreeNodes())
}

func count(m *smartly.Module) (muxes, eqs int) {
	for _, c := range m.Cells() {
		switch c.Type {
		case rtlil.CellMux, rtlil.CellPmux:
			muxes++
		case rtlil.CellEq:
			eqs++
		}
	}
	return
}
