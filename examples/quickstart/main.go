// Quickstart: parse a small Verilog design containing the paper's
// Figure 3 redundancy, optimize it with the full smaRTLy pipeline, and
// compare against the Yosys baseline.
//
// This uses the legacy Pipeline enum; see examples/flows for the
// composable Flow API (script DSL, pass registry, structured reports).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
module demo(input s, input r, input [7:0] a, input [7:0] b,
            input [7:0] c, output [7:0] y);
  // Figure 3 of the paper: the inner select (s|r) is forced to 1
  // whenever the outer branch is taken, so the inner mux is redundant —
  // but the controls are different signals, which defeats the
  // traditional opt_muxtree pass.
  assign y = s ? ((s | r) ? a : b) : c;
endmodule`

func main() {
	for _, pipeline := range []smartly.Pipeline{smartly.PipelineYosys, smartly.PipelineFull} {
		design, err := smartly.ParseVerilog(src)
		if err != nil {
			log.Fatal(err)
		}
		m := design.Top()
		orig := m.Clone()

		before, err := smartly.Area(m)
		if err != nil {
			log.Fatal(err)
		}
		report, err := smartly.Optimize(m, pipeline)
		if err != nil {
			log.Fatal(err)
		}
		after, err := smartly.Area(m)
		if err != nil {
			log.Fatal(err)
		}
		if err := smartly.CheckEquivalence(orig, m); err != nil {
			log.Fatalf("optimization is unsound: %v", err)
		}

		fmt.Printf("pipeline %-7s AIG area %3d -> %3d", pipeline, before, after)
		if n := report.Details["mux_collapsed"]; n > 0 {
			fmt.Printf("  (collapsed %d redundant mux)", n)
		}
		fmt.Println()
	}
	fmt.Println("\nsmaRTLy removes the dependent-control mux the baseline cannot see.")
}
