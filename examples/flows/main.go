// Flows: compose optimization passes with the script DSL, inspect the
// pass registry, and read the structured run report.
//
// Run with: go run ./examples/flows
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
module demo(input s, input r, input [7:0] a, input [7:0] b,
            input [7:0] c, output [7:0] y);
  // Figure 3 of the paper: the inner select (s|r) is implied by the
  // outer s, so the inner mux is redundant.
  assign y = s ? ((s | r) ? a : b) : c;
endmodule`

func main() {
	// The registry lists every pass a flow script can use.
	fmt.Println("registered passes:")
	for _, spec := range smartly.Passes() {
		fmt.Printf("  %-12s %s\n", spec.Name, spec.Summary)
	}
	fmt.Println()

	// Flows compose passes with typed options; fixpoint(iters=n) { ... }
	// repeats its body until nothing changes. NamedFlow("yosys"|"sat"|
	// "rebuild"|"full") returns the paper's pipelines.
	flows := []string{
		"fixpoint { opt_expr; opt_muxtree; opt_clean }",          // Yosys baseline
		"fixpoint { opt_expr; satmux(conflicts=64); opt_clean }", // tuned SAT budget
		"fixpoint { opt_expr; smartly; opt_clean }",              // full smaRTLy
	}
	for _, script := range flows {
		flow, err := smartly.ParseFlow(script)
		if err != nil {
			log.Fatal(err)
		}
		design, err := smartly.ParseVerilog(src)
		if err != nil {
			log.Fatal(err)
		}
		m := design.Top()
		before, err := smartly.Area(m)
		if err != nil {
			log.Fatal(err)
		}
		report, err := flow.Run(m)
		if err != nil {
			log.Fatal(err)
		}
		after, err := smartly.Area(m)
		if err != nil {
			log.Fatal(err)
		}
		// The structured report carries per-pass counters, call counts
		// and fixpoint iterations (wall times with WithTimings()).
		fmt.Printf("flow: %s\n", flow)
		fmt.Printf("  AIG area %d -> %d\n", before, after)
		for _, p := range report.Passes {
			if len(p.Counters) > 0 {
				fmt.Printf("  %s: %v\n", p.Name, p.Counters)
			}
		}
		for _, fp := range report.Fixpoints {
			fmt.Printf("  converged after %d iterations\n", fp.Iterations)
		}
		fmt.Println()
	}
}
