// Inference demonstrates the machinery behind smaRTLy's SAT-based
// redundancy elimination (§II): the Table I inference rules resolve the
// Figure 3 dependency without any SAT call, while an arithmetic
// dependency (x < 2 vs x == 5) needs the sub-graph + simulation/SAT
// stage. The oracle statistics show which mechanism fired.
//
// Run with: go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

func main() {
	// --- Inference rules in isolation (paper Table I) -----------------
	m := rtlil.NewModule("rules")
	s := m.AddInput("s", 1)
	r := m.AddInput("r", 1)
	or := m.Or(s.Bits(), r.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), or)

	eng := infer.New(rtlil.NewIndex(m), nil)
	eng.Assume(s.Bit(0), rtlil.S1)
	eng.Propagate()
	v, known := eng.Value(or[0])
	fmt.Printf("assume s=1: engine infers s|r = %v (known=%v)\n", v, known)

	// --- Figure 3: resolved by inference alone ------------------------
	fig3 := buildFigure3()
	pass := &core.SatMuxPass{Opts: core.SatMuxOptions{DisableSAT: true}}
	if _, err := opt.RunScript(nil, fig3, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figure 3, inference only:   %s\n", pass.LastStats)

	// --- Arithmetic dependency: needs simulation or SAT ---------------
	hard := buildArithDependency()
	pass2 := &core.SatMuxPass{Opts: core.SatMuxOptions{SimInputLimit: -1}} // force SAT
	if _, err := opt.RunScript(nil, hard, pass2, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x<2 vs x==5, SAT forced:    %s\n", pass2.LastStats)

	hard2 := buildArithDependency()
	pass3 := &core.SatMuxPass{} // default: exhaustive simulation (few inputs)
	if _, err := opt.RunScript(nil, hard2, pass3, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x<2 vs x==5, sim preferred: %s\n", pass3.LastStats)
}

// buildFigure3 constructs Y = S ? ((S|R) ? A : B) : C.
func buildFigure3() *rtlil.Module {
	m := rtlil.NewModule("fig3")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	c := m.AddInput("c", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	r := m.AddInput("r", 1).Bits()
	inner := m.Mux(b, a, m.Or(s, r))
	y := m.AddOutput("y", 4).Bits()
	m.AddMux("root", c, inner, s, y)
	return m
}

// buildArithDependency constructs lt ? (eq5 ? a : b) : c where lt = x<2
// and eq5 = x==5: on the taken path eq5 can never hold.
func buildArithDependency() *rtlil.Module {
	m := rtlil.NewModule("arith")
	x := m.AddInput("x", 3).Bits()
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	c := m.AddInput("c", 4).Bits()
	lt := m.Lt(x, rtlil.Const(2, 3))
	eq5 := m.Eq(x, rtlil.Const(5, 3))
	inner := m.Mux(b, a, eq5)
	y := m.AddOutput("y", 4).Bits()
	m.AddMux("root", c, inner, lt, y)
	return m
}
