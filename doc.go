// Package smartly is a Go reproduction of "SmaRTLy: RTL Optimization
// with Logic Inferencing and Structural Rebuilding" (DAC 2025): an RTL
// logic-optimization library that replaces Yosys' opt_muxtree pass
// with two stronger multiplexer-tree optimizations — SAT-based
// redundancy elimination and ADD-driven muxtree restructuring.
//
// The package is a facade over the implementation packages:
//
//	rtlil    — word-level netlist IR (Yosys RTLIL model), JSON IO,
//	           canonical content hashing
//	verilog  — synthesizable-subset Verilog frontend
//	opt      — pass framework, registry + flow script DSL, reports,
//	           baseline passes (opt_expr/muxtree/clean/reduce)
//	core     — the paper's passes (satmux, rebuild) and named flows
//	aig      — AIG mapping and the paper's area metric
//	cec      — combinational equivalence checking
//	genbench — benchmark generators reproducing the paper's evaluation
//	harness  — end-to-end experiment runner (tables, bench reports)
//	server   — smartlyd HTTP serving layer (optimization as a service)
//	cache    — content-addressed result cache behind the server
//
// # Quick start
//
//	design, _ := smartly.ParseVerilog(src)
//	m := design.Top()
//	before, _ := smartly.Area(m)
//	flow, _ := smartly.ParseFlow("fixpoint { opt_expr; smartly; opt_clean }")
//	report, _ := flow.Run(m)
//	after, _ := smartly.Area(m)
//
// Flows compose the registered passes (see Passes) with typed options;
// NamedFlow("yosys"|"sat"|"rebuild"|"full") returns the paper's four
// pipelines. Flow.Run/RunDesign take functional options (WithContext,
// WithWorkers, WithLogf, WithTimings) and return structured RunReports.
// The legacy Pipeline enum and Optimize remain as thin shims over the
// named flows.
//
// # Content identity and serving
//
// Hash/HashDesign return the canonical content hash of a netlist —
// invariant under wire/cell insertion order and JSON key order — and
// Flow.Canonical the normalized form of a flow script. Together they
// key the result cache of the smartlyd daemon (cmd/smartlyd), which
// serves POST /v1/optimize over this facade; the client package and
// `smartly -remote` consume it. See ARCHITECTURE.md and docs/api.md.
package smartly

// The pass/flow reference in docs/passes.md is generated from the live
// registry; CI fails if it drifts (cmd/smartly-docgen -check).
//go:generate go run ./cmd/smartly-docgen -o docs/passes.md
