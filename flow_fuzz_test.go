package smartly

import (
	"reflect"
	"testing"
)

// FuzzParseFlow: the script parser must never panic, and every
// successfully parsed flow must round-trip through its String() form to
// an identical flow.
func FuzzParseFlow(f *testing.F) {
	for _, seed := range []string{
		"opt_expr",
		"opt_expr; opt_muxtree; opt_clean",
		"opt_expr; satmux(conflicts=64); rebuild; opt_clean",
		"fixpoint { opt_expr; smartly; opt_clean }",
		"fixpoint(iters=3) { opt_expr; fixpoint { opt_clean } }",
		"satmux(depth=2, cells=10, sim_inputs=4, sat_inputs=50, conflicts=100, inference=false, sat=true, subgraph_filter=false)",
		"rebuild(selector_bits=8, patterns=16, force=true)",
		"smartly(conflicts=10, patterns=4)",
		"opt_expr;;opt_clean;",
		"opt_expr()",
		"bogus(key=value)",
		"fixpoint {",
		"a(b=c,d=e){f;g}",
		"  \n\t ; (=) } { ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, script string) {
		f1, err := ParseFlow(script)
		if err != nil {
			return // rejection is fine; panics are not
		}
		s1 := f1.String()
		f2, err := ParseFlow(s1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", s1, script, err)
		}
		if s2 := f2.String(); s1 != s2 {
			t.Fatalf("round trip not stable: %q -> %q (from %q)", s1, s2, script)
		}
		p1, err := f1.flow.Compile()
		if err != nil {
			t.Fatalf("compile of parsed flow %q failed: %v", s1, err)
		}
		p2, err := f2.flow.Compile()
		if err != nil {
			t.Fatalf("compile of reparsed flow %q failed: %v", s1, err)
		}
		if len(p1) != len(p2) {
			t.Fatalf("pass counts differ: %d vs %d", len(p1), len(p2))
		}
		for i := range p1 {
			if !reflect.DeepEqual(p1[i], p2[i]) {
				t.Fatalf("pass %d differs after round trip: %#v vs %#v", i, p1[i], p2[i])
			}
		}
	})
}
