// A four-way case statement over a two-bit selector: elaborates into an
// eq+mux chain that muxtree restructuring rebuilds into muxes controlled
// directly by the selector bits (paper SS III), deleting the comparators.
module case4(input [1:0] s,
             input [3:0] p0, input [3:0] p1, input [3:0] p2, input [3:0] p3,
             output reg [3:0] y);
  always @(*) begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule
