// Paper Figure 3: the inner mux selects on s|r, but along the outer
// mux's s=1 branch that control is provably 1 (S => S|R), so smaRTLy's
// SAT-based redundancy elimination collapses the inner mux to its
// "a" branch. The baseline opt_muxtree cannot see through the OR gate.
module fig3(input s, input r,
            input [7:0] a, input [7:0] b, input [7:0] c,
            output [7:0] y);
  wire t;
  assign t = s | r;
  wire [7:0] inner;
  assign inner = t ? a : b;
  assign y = s ? inner : c;
endmodule
