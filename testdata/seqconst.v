// Constant-register shapes for the opt_dff greatest-fixpoint sweep:
// `z` is tied to zero, `decay` (q' = q & x) never leaves the zero reset
// state although its D is not syntactically constant, and `ghost` is
// latched every cycle but never read. All three registers disappear
// under the seq flow; y reduces to a function of x alone.
module seqconst(input clk,
                input [3:0] x,
                output [3:0] y);
  reg [3:0] z;
  reg [3:0] decay;
  reg [3:0] ghost;
  always @(posedge clk) begin
    z <= 4'b0000;
    decay <= decay & x;
    ghost <= ~x;
  end
  assign y = x ^ z ^ decay;
endmodule
