// Serial-in shift register with two tap registers that latch the same
// next-state function (mergeable) and one tap that is never read
// (unused). The shifter itself is live.
module shiftreg(input clk, input d, input en,
                output q, output tap);
  reg [3:0] sh;
  reg t1, t2, dead;
  always @(posedge clk) begin
    sh <= {sh[2:0], d & en};
    t1 <= sh[3];
    t2 <= sh[3];
    dead <= sh[0] ^ d;
  end
  assign q = t1 & en;
  assign tap = t2 | sh[1];
endmodule
