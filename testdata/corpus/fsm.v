// Three-state handshake FSM (idle -> run -> done) with a stuck status
// register: `err` can only ever be cleared, so from the zero reset it
// is a provable constant and the sweep removes it. The state register
// is live and must survive.
module fsm(input clk, input go, input stop,
           output [1:0] state_out, output busy);
  reg [1:0] state;
  reg [1:0] next;
  reg err;
  always @(*) begin
    case (state)
      2'b00: next = go ? 2'b01 : 2'b00;
      2'b01: next = stop ? 2'b10 : 2'b01;
      2'b10: next = 2'b00;
      default: next = 2'b00;
    endcase
  end
  always @(posedge clk) begin
    state <= next;
    err <= err & go;
  end
  assign state_out = state;
  assign busy = (state != 2'b00) | err;
endmodule
