// Two-stage ALU pipeline. The live stages p1/p2 must survive the
// register sweep; `zero` is latched from a constant and `spin` is a
// self-loop, so both reduce to the reset state and disappear.
module pipeline(input clk,
                input [7:0] a, input [7:0] b, input sel,
                output [7:0] y);
  reg [7:0] p1, p2;
  reg [7:0] zero;
  reg [7:0] spin;
  always @(posedge clk) begin
    p1 <= sel ? (a + b) : (a ^ b);
    p2 <= p1;
    zero <= 8'b00000000;
    spin <= spin;
  end
  assign y = (p2 | zero) ^ spin;
endmodule
