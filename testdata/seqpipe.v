// A 2-stage registered pipeline with register-level redundancy for the
// opt_dff sweep: `stuck` is a self-loop that never leaves the zero
// reset state (removable), and `d1`/`d2` latch the same next-state
// function (mergeable). The live pipeline registers s1/s2 must survive.
// Every rewrite is proven by the k-induction sequential CEC before it
// is applied.
module seqpipe(input clk,
               input [3:0] a, input [3:0] b,
               output [3:0] y);
  reg [3:0] s1, s2;
  reg [3:0] stuck;
  reg [3:0] d1, d2;
  wire [3:0] sum;
  assign sum = a + b;
  always @(posedge clk) begin
    s1 <= a ^ b;
    s2 <= s1 & a;
    stuck <= stuck;
    d1 <= sum;
    d2 <= sum;
  end
  assign y = (s2 | stuck) ^ (d1 & d2);
endmodule
