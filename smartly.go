package smartly

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/genbench"
	"repro/internal/rtlil"
	"repro/internal/verilog"
)

// Re-exported IR types: the facade's netlist vocabulary.
type (
	// Design is a collection of modules.
	Design = rtlil.Design
	// Module is a netlist of cells, wires and connections.
	Module = rtlil.Module
	// Cell is a word-level logic operator instance.
	Cell = rtlil.Cell
	// Wire is a named multi-bit net.
	Wire = rtlil.Wire
	// SigSpec is an LSB-first signal.
	SigSpec = rtlil.SigSpec
	// SigBit is one bit of a signal.
	SigBit = rtlil.SigBit
)

// NewDesign returns an empty design.
func NewDesign() *Design { return rtlil.NewDesign() }

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module { return rtlil.NewModule(name) }

// Const returns a width-bit constant signal.
func Const(value uint64, width int) SigSpec { return rtlil.Const(value, width) }

// ParseVerilog parses and elaborates Verilog source (the synthesizable
// subset: modules, assign, always @(*) / @(posedge), if/else,
// case/casez) into a netlist design.
func ParseVerilog(src string) (*Design, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	return verilog.Elaborate(f)
}

// Pipeline selects an optimization flow from the paper's evaluation.
//
// Pipeline is the legacy closed enum; new code should use ParseFlow or
// NamedFlow, which expose the same four pipelines plus arbitrary pass
// combinations. Each enum value is a thin shim over its named flow and
// produces bit-identical netlists and counters.
type Pipeline int

// The four flows compared in the paper's Tables II and III.
const (
	// PipelineYosys is the baseline: opt_expr; opt_muxtree; opt_clean.
	PipelineYosys Pipeline = iota
	// PipelineSAT replaces opt_muxtree with smaRTLy's SAT-based
	// redundancy elimination.
	PipelineSAT
	// PipelineRebuild adds smaRTLy's muxtree restructuring to the
	// baseline.
	PipelineRebuild
	// PipelineFull is complete smaRTLy: SAT elimination + restructuring.
	PipelineFull
)

// String names the pipeline.
func (p Pipeline) String() string {
	switch p {
	case PipelineYosys:
		return "yosys"
	case PipelineSAT:
		return "sat"
	case PipelineRebuild:
		return "rebuild"
	case PipelineFull:
		return "full"
	}
	return fmt.Sprintf("Pipeline(%d)", int(p))
}

// ParsePipeline parses a pipeline name as printed by String.
func ParsePipeline(name string) (Pipeline, error) {
	switch strings.ToLower(name) {
	case "yosys", "baseline":
		return PipelineYosys, nil
	case "sat", "satmux":
		return PipelineSAT, nil
	case "rebuild", "restructure":
		return PipelineRebuild, nil
	case "full", "smartly":
		return PipelineFull, nil
	}
	return 0, fmt.Errorf("smartly: unknown pipeline %q (yosys|sat|rebuild|full)", name)
}

// Flow returns the named flow the pipeline value shims over (never
// fails: the four names are registered at init).
func (p Pipeline) Flow() *Flow {
	name := p.String()
	if _, err := ParsePipeline(name); err != nil {
		name = PipelineFull.String()
	}
	f, err := NamedFlow(name)
	if err != nil {
		panic(fmt.Sprintf("smartly: built-in flow %q missing: %v", name, err))
	}
	return f
}

// Report summarizes an optimization run — the legacy flat shape kept
// for Optimize/OptimizeContext/OptimizeDesign. Flow.Run returns the
// structured RunReport instead.
type Report struct {
	// Changed reports whether any rewrite fired.
	Changed bool
	// Details maps pass counters (e.g. "mux_collapsed") to counts.
	Details map[string]int
}

// OptimizeOptions tunes a context-aware optimization run.
type OptimizeOptions struct {
	// Workers bounds the goroutines of parallel stages: the SAT-mux
	// query batches inside a pipeline and, for OptimizeDesign, the
	// concurrently optimized modules. 0 means runtime.GOMAXPROCS(0);
	// 1 forces fully sequential execution. The optimized netlists are
	// bit-identical for every value.
	Workers int
	// Logf receives structured pass-timing lines; nil discards them.
	Logf func(format string, args ...any)
}

// Optimize runs the selected pipeline on the module in place.
func Optimize(m *Module, p Pipeline) (Report, error) {
	return OptimizeContext(context.Background(), m, p, OptimizeOptions{})
}

// OptimizeContext runs the selected pipeline on the module in place,
// honoring ctx cancellation and deadlines. A canceled run returns the
// context error; the rewrites applied before the cancellation are each
// individually sound, so the module is still equivalent to the input.
func OptimizeContext(ctx context.Context, m *Module, p Pipeline, o OptimizeOptions) (Report, error) {
	cfg := newRunConfig([]RunOption{
		WithContext(ctx), WithWorkers(o.Workers), WithLogf(o.Logf)})
	_, r, err := p.Flow().run(cfg, m)
	return Report{Changed: r.Changed, Details: r.Details}, err
}

// OptimizeDesign runs the selected pipeline over every module of the
// design, optimizing up to o.Workers modules concurrently (modules are
// disjoint netlists, so the per-module results are independent of the
// schedule). It returns the reports keyed by module name and the first
// error encountered.
func OptimizeDesign(ctx context.Context, d *Design, p Pipeline, o OptimizeOptions) (map[string]Report, error) {
	runs, err := p.Flow().RunDesign(d,
		WithContext(ctx), WithWorkers(o.Workers), WithLogf(o.Logf))
	out := make(map[string]Report, len(runs))
	for name, r := range runs {
		out[name] = Report{Changed: r.Changed, Details: r.Counters()}
	}
	return out, err
}

// Hash returns the canonical content hash of the module (hex SHA-256).
// The hash identifies the logical netlist, not one serialization of it:
// modules that differ only in wire/cell insertion order, JSON key order
// or connection statement order hash identically, while any semantic
// change (names, widths, ports, cell types, parameters, connectivity)
// changes the hash. The serving layer keys its result cache by this
// hash; see internal/cache.
func Hash(m *Module) string { return rtlil.CanonicalHash(m) }

// HashDesign returns the canonical content hash of the whole design
// (module hashes combined in sorted name order).
func HashDesign(d *Design) string { return rtlil.CanonicalHashDesign(d) }

// Area maps the module to an And-Inverter Graph and returns the number
// of AND nodes reachable from its outputs — the paper's area metric
// (flip-flops excluded).
func Area(m *Module) (int, error) { return aig.Area(m) }

// CheckEquivalence proves two modules equivalent. Combinational
// modules use the SAT miter directly; when either side holds registers
// it proves sequential equivalence from the zero-reset state by
// k-induction (so register sweeps — removals, merges — verify instead
// of tripping an interface mismatch on the cut flip-flops). It returns
// nil when equivalent and a counterexample error when not.
func CheckEquivalence(a, b *Module) error {
	if a.StateBits() > 0 || b.StateBits() > 0 {
		return cec.CheckSequential(a, b, nil)
	}
	return cec.Check(a, b, nil)
}

// BenchmarkNames lists the public benchmark cases reproduced from the
// paper's Table II.
func BenchmarkNames() []string {
	var out []string
	for _, r := range genbench.Recipes() {
		out = append(out, r.Name)
	}
	return out
}

// GenerateBenchmark builds the named public benchmark substitute at the
// given scale (1.0 = calibrated size). It returns an error for unknown
// names; see BenchmarkNames.
func GenerateBenchmark(name string, scale float64) (*Module, error) {
	for _, r := range genbench.Recipes() {
		if r.Name == name {
			return genbench.Generate(r, scale), nil
		}
	}
	return nil, fmt.Errorf("smartly: unknown benchmark %q", name)
}

// GenerateIndustrial builds one industrial-style test point at the
// given scale (paper §IV-B).
func GenerateIndustrial(point int, scale float64) *Module {
	return genbench.Generate(genbench.IndustrialRecipe(point), scale)
}
