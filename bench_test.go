package smartly_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md, per-experiment index):
//
//	BenchmarkTableII     — Table II rows (areas + extra-reduction ratio)
//	BenchmarkTableIII    — Table III rows (SAT / Rebuild / Full splits)
//	BenchmarkIndustrial  — §IV-B industrial summary
//	BenchmarkFigure3     — the dependent-control collapse (Figure 3)
//	BenchmarkListing2ADD — greedy vs bad variable assignment (Listing 2)
//
// plus the ablations DESIGN.md calls out:
//
//	BenchmarkSubgraphFilter  — Theorem II.1 pruning on vs off
//	BenchmarkInferenceRules  — Table I rules on vs off
//	BenchmarkSimVsSAT        — simulation/SAT decision threshold
//	BenchmarkRebuildHeuristic— ADD ordering heuristics
//
// Benchmarks run at a reduced scale (default 0.1, override with
// SMARTLY_BENCH_SCALE); cmd/smartly-bench reproduces the full calibrated
// tables. Areas are attached as custom metrics.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro"
	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/genbench"
	"repro/internal/harness"
	"repro/internal/opt"
	"repro/internal/rtlil"
	"repro/internal/subgraph"
)

func benchScale() float64 {
	if s := os.Getenv("SMARTLY_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// BenchmarkTableII regenerates the Table II rows: original/Yosys/smaRTLy
// areas and the extra-reduction ratio per benchmark case.
func BenchmarkTableII(b *testing.B) {
	for _, r := range genbench.Recipes() {
		b.Run(r.Name, func(b *testing.B) {
			var cr harness.CaseResult
			var err error
			for i := 0; i < b.N; i++ {
				cr, err = harness.RunCase(r, harness.Options{Scale: benchScale()})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cr.Original), "area_original")
			b.ReportMetric(float64(cr.Area(harness.FlowYosys)), "area_yosys")
			b.ReportMetric(float64(cr.Area(harness.FlowFull)), "area_smartly")
			b.ReportMetric(cr.RatioFull(), "ratio_%")
		})
	}
}

// BenchmarkTableIII regenerates the Table III splits: the reduction each
// individual method achieves versus the combined optimization.
func BenchmarkTableIII(b *testing.B) {
	for _, r := range genbench.Recipes() {
		b.Run(r.Name, func(b *testing.B) {
			var cr harness.CaseResult
			var err error
			for i := 0; i < b.N; i++ {
				cr, err = harness.RunCase(r, harness.Options{Scale: benchScale()})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cr.RatioSAT(), "sat_%")
			b.ReportMetric(cr.RatioRebuild(), "rebuild_%")
			b.ReportMetric(cr.RatioFull(), "full_%")
		})
	}
}

// BenchmarkIndustrial regenerates the §IV-B experiment: extra AIG-area
// reduction over Yosys on industrial-style selection-heavy netlists
// (paper: 47.2%).
func BenchmarkIndustrial(b *testing.B) {
	var res harness.IndustrialResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.RunIndustrial(2, harness.Options{Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AvgExtra, "extra_reduction_%")
}

// BenchmarkFigure3 measures the flagship single-circuit optimization:
// Y = S ? ((S|R) ? A : B) : C collapsing to Y = S ? A : C.
func BenchmarkFigure3(b *testing.B) {
	build := func() *smartly.Module {
		m := smartly.NewModule("fig3")
		a := m.AddInput("a", 8).Bits()
		bb := m.AddInput("b", 8).Bits()
		c := m.AddInput("c", 8).Bits()
		s := m.AddInput("s", 1).Bits()
		r := m.AddInput("r", 1).Bits()
		inner := m.Mux(bb, a, m.Or(s, r))
		y := m.AddOutput("y", 8).Bits()
		m.AddMux("root", c, inner, s, y)
		return m
	}
	var after int
	for i := 0; i < b.N; i++ {
		m := build()
		if _, err := smartly.Optimize(m, smartly.PipelineFull); err != nil {
			b.Fatal(err)
		}
		a, err := smartly.Area(m)
		if err != nil {
			b.Fatal(err)
		}
		after = a
	}
	b.ReportMetric(float64(after), "area_after")
}

// BenchmarkListing2ADD compares the greedy ADD variable assignment with
// the paper's bad order on the Listing 2 table (3 vs 7 muxes).
func BenchmarkRebuildHeuristic(b *testing.B) {
	patterns := []bdd.Pattern{
		bdd.ParsePattern("1zz", 0),
		bdd.ParsePattern("01z", 1),
		bdd.ParsePattern("001", 2),
		bdd.ParsePattern("zzz", 3),
	}
	b.Run("greedy", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = bdd.BuildGreedy(patterns, 3).CountNodes()
		}
		b.ReportMetric(float64(nodes), "muxes")
	})
	b.Run("bad_order", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = bdd.BuildOrdered(patterns, 3, []int{0, 1, 2}).CountTreeNodes()
		}
		b.ReportMetric(float64(nodes), "muxes")
	})
	b.Run("natural_order", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = bdd.BuildOrdered(patterns, 3, []int{2, 1, 0}).CountNodes()
		}
		b.ReportMetric(float64(nodes), "muxes")
	})
}

// BenchmarkSubgraphFilter measures the Theorem II.1 pruning: sub-graph
// size and satmux runtime with the connectivity filter on vs off.
func BenchmarkSubgraphFilter(b *testing.B) {
	recipe := genbench.Recipe{
		Name: "filter-probe", Seed: 8,
		PlainBlocks: 40, DepBlocks: 30,
		CaseSelBits: [2]int{3, 4}, DataWidth: 8, PmuxFraction: 0.5,
	}
	for _, disabled := range []bool{false, true} {
		name := "filter_on"
		if disabled {
			name = "filter_off"
		}
		b.Run(name, func(b *testing.B) {
			var stats core.SatMuxStats
			for i := 0; i < b.N; i++ {
				m := genbench.Generate(recipe, 1)
				pass := &core.SatMuxPass{Opts: core.SatMuxOptions{DisableSubgraphFilter: disabled}}
				if _, err := pass.Run(nil, m); err != nil {
					b.Fatal(err)
				}
				stats = pass.LastStats
			}
			if stats.Queries > 0 {
				b.ReportMetric(float64(stats.SubgraphCells)/float64(stats.Queries), "cells/query")
				b.ReportMetric(float64(stats.CandidateCells)/float64(stats.Queries), "candidates/query")
			}
		})
	}
}

// BenchmarkInferenceRules measures how many SAT/simulation calls the
// Table I inference rules avoid.
func BenchmarkInferenceRules(b *testing.B) {
	recipe := genbench.Recipe{
		Name: "rules-probe", Seed: 9,
		DepBlocks:   60,
		CaseSelBits: [2]int{3, 4}, DataWidth: 8, PmuxFraction: 0.5,
	}
	for _, disabled := range []bool{false, true} {
		name := "rules_on"
		if disabled {
			name = "rules_off"
		}
		b.Run(name, func(b *testing.B) {
			var stats core.SatMuxStats
			for i := 0; i < b.N; i++ {
				m := genbench.Generate(recipe, 1)
				pass := &core.SatMuxPass{Opts: core.SatMuxOptions{DisableInference: disabled}}
				if _, err := pass.Run(nil, m); err != nil {
					b.Fatal(err)
				}
				stats = pass.LastStats
			}
			b.ReportMetric(float64(stats.InferenceHits), "inference_hits")
			b.ReportMetric(float64(stats.SimHits), "sim_hits")
			b.ReportMetric(float64(stats.SATCalls), "sat_calls")
		})
	}
}

// BenchmarkSimVsSAT sweeps the simulation/SAT decision threshold (the
// paper chooses "between these methods based on the number of inputs").
func BenchmarkSimVsSAT(b *testing.B) {
	recipe := genbench.Recipe{
		Name: "simsat-probe", Seed: 10,
		DepBlocks:   40,
		CaseSelBits: [2]int{3, 4}, DataWidth: 8, PmuxFraction: 0.5,
	}
	for _, limit := range []int{-1, 4, 11, 16} {
		b.Run(fmt.Sprintf("sim_limit_%d", limit), func(b *testing.B) {
			var stats core.SatMuxStats
			for i := 0; i < b.N; i++ {
				m := genbench.Generate(recipe, 1)
				pass := &core.SatMuxPass{Opts: core.SatMuxOptions{SimInputLimit: limit}}
				if _, err := pass.Run(nil, m); err != nil {
					b.Fatal(err)
				}
				stats = pass.LastStats
			}
			b.ReportMetric(float64(stats.SimHits), "sim_hits")
			b.ReportMetric(float64(stats.SATHits), "sat_hits")
		})
	}
}

// BenchmarkSubgraphExtract measures raw sub-graph extraction.
func BenchmarkSubgraphExtract(b *testing.B) {
	m := genbench.Generate(genbench.Recipe{
		Name: "extract-probe", Seed: 11,
		PlainBlocks: 100, DepBlocks: 50,
		CaseSelBits: [2]int{3, 4}, DataWidth: 8, PmuxFraction: 0.5,
	}, 1)
	ix := rtlil.NewIndex(m)
	var target rtlil.SigBit
	var known []rtlil.SigBit
	for _, c := range m.Cells() {
		if c.Type == rtlil.CellMux {
			target = ix.MapBit(c.Port("S")[0])
			known = append(known[:0], ix.MapBit(c.Port("Y")[0]))
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subgraph.Extract(ix, target, known, subgraph.Options{})
	}
}

// BenchmarkPipelines measures wall-clock of the four pipelines on a
// mixed mid-size circuit (runtime comparison, not in the paper's tables
// but useful for regressions).
func BenchmarkPipelines(b *testing.B) {
	recipe := genbench.Recipes()[2] // wb_conmax: mixed content
	pipelines := map[string]func() opt.Pass{
		"yosys":   core.PipelineYosys,
		"sat":     func() opt.Pass { return core.PipelineSAT(core.SatMuxOptions{}) },
		"rebuild": func() opt.Pass { return core.PipelineRebuild(core.RebuildOptions{}) },
		"full":    func() opt.Pass { return core.PipelineFull(core.SatMuxOptions{}, core.RebuildOptions{}) },
	}
	for name, mk := range pipelines {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := genbench.Generate(recipe, benchScale())
				b.StartTimer()
				if _, err := mk().Run(nil, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAIGMapping measures the aigmap-equivalent conversion.
func BenchmarkAIGMapping(b *testing.B) {
	m := genbench.Generate(genbench.Recipes()[0], benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smartly.Area(m); err != nil {
			b.Fatal(err)
		}
	}
}
