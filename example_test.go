package smartly_test

import (
	"fmt"
	"log"

	smartly "repro"
)

// The flagship transformation from the paper's Figure 3: the inner
// multiplexer's control (s|r) is implied by the outer branch condition,
// so smaRTLy deletes it — the Yosys-style baseline cannot, because the
// control signals are different wires.
func Example() {
	design, err := smartly.ParseVerilog(`
module demo(input s, input r, input [7:0] a, input [7:0] b,
            input [7:0] c, output [7:0] y);
  assign y = s ? ((s | r) ? a : b) : c;
endmodule`)
	if err != nil {
		log.Fatal(err)
	}
	m := design.Top()
	before, _ := smartly.Area(m)
	if _, err := smartly.Optimize(m, smartly.PipelineFull); err != nil {
		log.Fatal(err)
	}
	after, _ := smartly.Area(m)
	fmt.Printf("AIG area: %d -> %d\n", before, after)
	// Output: AIG area: 49 -> 24
}

// Case statements elaborate into eq+mux trees; muxtree restructuring
// rebuilds them as muxes over the selector bits and the comparison
// gates disappear.
func Example_restructuring() {
	design, err := smartly.ParseVerilog(`
module listing1(input [1:0] s, input [3:0] p0, input [3:0] p1,
                input [3:0] p2, input [3:0] p3, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule`)
	if err != nil {
		log.Fatal(err)
	}
	m := design.Top()
	orig := m.Clone()
	if _, err := smartly.Optimize(m, smartly.PipelineRebuild); err != nil {
		log.Fatal(err)
	}
	if err := smartly.CheckEquivalence(orig, m); err != nil {
		log.Fatal(err)
	}
	eqs := 0
	for _, c := range m.Cells() {
		if c.Type == "$eq" {
			eqs++
		}
	}
	fmt.Printf("eq gates after restructuring: %d\n", eqs)
	// Output: eq gates after restructuring: 0
}

// Netlists can also be built programmatically with the expression
// builders.
func ExampleNewModule() {
	m := smartly.NewModule("mini")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), m.Mux(m.And(a, b), m.Or(a, b), s))
	area, _ := smartly.Area(m)
	fmt.Printf("cells=%d area=%d\n", m.NumCells(), area)
	// Output: cells=3 area=20
}
