package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestBenchJSONReport: a tiny-scale -json run emits a parseable report
// with every case and flow populated.
func TestBenchJSONReport(t *testing.T) {
	var buf bytes.Buffer
	if err := runBench(benchConfig{scale: 0.02, table: "all", industrial: 1, jsonOut: true}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Schema != harness.BenchSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Flows) != 4 || rep.Flows[0] != harness.FlowYosys {
		t.Errorf("flows = %v", rep.Flows)
	}
	if len(rep.Cases) == 0 || len(rep.Industrial) != 1 {
		t.Fatalf("cases = %d, industrial = %d", len(rep.Cases), len(rep.Industrial))
	}
	for _, c := range rep.Cases {
		if c.OriginalArea <= 0 {
			t.Errorf("case %s: original area %d", c.Name, c.OriginalArea)
		}
		for _, f := range rep.Flows {
			if _, ok := c.Areas[f]; !ok {
				t.Errorf("case %s: flow %s missing", c.Name, f)
			}
		}
	}
}

// TestBenchCustomFlows: -flow specs switch the run to the generic table.
func TestBenchCustomFlows(t *testing.T) {
	var buf bytes.Buffer
	flows := []string{"yosys", "quick=opt_expr; opt_clean"}
	if err := runBench(benchConfig{scale: 0.02, table: "2", flows: flows}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"yosys", "quick", "Average", "Ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("custom-flow table missing %q:\n%s", want, out)
		}
	}
}

// TestBenchCustomFlowsIndustrial: with custom flows the industrial run
// must render the generic table (the §IV-B summary hardcodes
// yosys/full and would print all zeros).
func TestBenchCustomFlowsIndustrial(t *testing.T) {
	var buf bytes.Buffer
	flows := []string{"base=opt_expr; opt_clean", "quick=fixpoint { opt_expr; opt_clean }"}
	if err := runBench(benchConfig{scale: 0.02, industrial: 1, flows: flows}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Industrial", "base", "quick"} {
		if !strings.Contains(out, want) {
			t.Errorf("custom industrial output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "smaRTLy removes") {
		t.Errorf("custom flows used the hardcoded yosys/full summary:\n%s", out)
	}
}

// TestBenchServerMode: -server attaches the warm-vs-cold latency smoke
// to the JSON report.
func TestBenchServerMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a server and optimizes repeatedly")
	}
	var buf bytes.Buffer
	if err := runBench(benchConfig{scale: 0.05, table: "", server: true, jsonOut: true}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Server == nil {
		t.Fatal("report has no server section")
	}
	if rep.Server.Case != "top_cache_axi" || rep.Server.Flow != "full" {
		t.Errorf("server bench %+v", rep.Server)
	}
	if rep.Server.ColdMS <= 0 || rep.Server.WarmMS <= 0 {
		t.Errorf("latencies not measured: %+v", rep.Server)
	}

	// The table mode prints the human-readable line.
	buf.Reset()
	if err := runBench(benchConfig{scale: 0.05, table: "", server: true, flows: []string{"yosys"}}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Server cache latency") ||
		!strings.Contains(buf.String(), "flow=yosys") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

func TestBenchDesignMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a server and optimizes a multi-module design repeatedly")
	}
	var buf bytes.Buffer
	if err := runBench(benchConfig{scale: 0.02, table: "", design: 3, flows: []string{"yosys"}, jsonOut: true}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Design == nil {
		t.Fatal("report has no design section")
	}
	if rep.Design.Modules != 3 || rep.Design.Flow != "yosys" {
		t.Errorf("design bench %+v", rep.Design)
	}
	if rep.Design.ColdMS <= 0 || rep.Design.WarmMS <= 0 || rep.Design.IncrementalMS <= 0 {
		t.Errorf("latencies not measured: %+v", rep.Design)
	}

	// The table mode prints the human-readable line.
	buf.Reset()
	if err := runBench(benchConfig{scale: 0.02, table: "", design: 3, flows: []string{"yosys"}}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Design-mode sharding latency") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

// TestBenchSatMode: -sat attaches the incremental-SAT-oracle section to
// the JSON report, with counters populated and both wall-clocks
// measured.
func TestBenchSatMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SAT-exercising flows twice over the benchmark set")
	}
	var buf bytes.Buffer
	if err := runBench(benchConfig{scale: 0.05, table: "", sat: true, jsonOut: true}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Sat == nil {
		t.Fatal("report has no sat section")
	}
	if len(rep.Sat.Flows) != 2 || rep.Sat.Flows[0].Flow != harness.FlowSAT || rep.Sat.Flows[1].Flow != harness.FlowFull {
		t.Fatalf("sat section flows: %+v", rep.Sat.Flows)
	}
	for _, f := range rep.Sat.Flows {
		if f.Queries == 0 {
			t.Errorf("flow %s: no oracle queries recorded", f.Flow)
		}
	}

	// The table mode prints the human-readable section.
	buf.Reset()
	if err := runBench(benchConfig{scale: 0.05, table: "", sat: true, flows: []string{"yosys"}}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Incremental SAT oracle") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

func TestBenchBadFlowSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := runBench(benchConfig{scale: 0.02, table: "2", flows: []string{"bad=no_such_pass"}}, &buf); err == nil {
		t.Error("invalid flow spec accepted")
	}
}

func TestBenchTables(t *testing.T) {
	var buf bytes.Buffer
	if err := runBench(benchConfig{scale: 0.02, table: "all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Table III") {
		t.Errorf("tables missing:\n%s", out)
	}
}
