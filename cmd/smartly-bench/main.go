// Command smartly-bench regenerates the paper's evaluation: Table II
// (AIG areas, Yosys vs smaRTLy), Table III (per-method reductions) and
// the §IV-B industrial summary.
//
// Usage:
//
//	smartly-bench [-scale 1.0] [-table 2|3|all] [-industrial n] [-j n] [-check] [-v]
//
// Scale 1.0 runs the calibrated case sizes (minutes); smaller scales
// reproduce the table shape faster. The paper's absolute circuit sizes
// correspond to roughly scale 100 — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1.0, "benchmark scale factor")
	table := flag.String("table", "all", "which table to regenerate: 2, 3 or all")
	industrial := flag.Int("industrial", 0, "also run n industrial test points")
	check := flag.Bool("check", false, "equivalence-check every optimized netlist (slow)")
	jobs := flag.Int("j", 0, "benchmark cases and SAT-mux queries run concurrently (0 = all cores, 1 = sequential); results are identical for every value")
	verbose := flag.Bool("v", false, "log per-pipeline progress")
	flag.Parse()

	opts := harness.Options{Scale: *scale, Check: *check, Jobs: *jobs, Workers: *jobs}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *table == "2" || *table == "3" || *table == "all" {
		results, err := harness.RunAll(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartly-bench:", err)
			os.Exit(1)
		}
		if *table != "3" {
			fmt.Println(harness.TableII(results))
		}
		if *table != "2" {
			fmt.Println(harness.TableIII(results))
		}
	}
	if *industrial > 0 {
		res, err := harness.RunIndustrial(*industrial, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartly-bench:", err)
			os.Exit(1)
		}
		fmt.Println(res.IndustrialSummary())
	}
}
