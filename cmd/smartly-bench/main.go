// Command smartly-bench regenerates the paper's evaluation: Table II
// (AIG areas, Yosys vs smaRTLy), Table III (per-method reductions) and
// the §IV-B industrial summary — or measures an arbitrary flow set.
//
// Usage:
//
//	smartly-bench [-scale 1.0] [-table 2|3|all] [-industrial n] [-j n] [-check] [-v]
//	              [-json] [-flow name|name=script]...
//
// Scale 1.0 runs the calibrated case sizes (minutes); smaller scales
// reproduce the table shape faster. The paper's absolute circuit sizes
// correspond to roughly scale 100 — see EXPERIMENTS.md.
//
// -flow selects the measured flows (repeatable): either a registered
// named flow ("full") or "name=script" with a flow script, e.g.
// -flow "tuned=fixpoint { opt_expr; satmux(conflicts=64); opt_clean }".
// Without -flow the paper's four pipelines run.
//
// -json replaces the tables with one machine-readable report on stdout
// (schema smartly-bench/v1): per-case areas for every flow, reduction
// ratios vs the first flow, and wall times. BENCH_baseline.json in the
// repository root holds the committed reference run
// (-json -scale 0.25).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/harness"
)

// flowList collects repeated -flow flags.
type flowList []string

func (f *flowList) String() string { return fmt.Sprint(*f) }

func (f *flowList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "benchmark scale factor")
	table := flag.String("table", "all", "which table to regenerate: 2, 3 or all")
	industrial := flag.Int("industrial", 0, "also run n industrial test points")
	check := flag.Bool("check", false, "equivalence-check every optimized netlist (slow)")
	jobs := flag.Int("j", 0, "benchmark cases and SAT-mux queries run concurrently (0 = all cores, 1 = sequential); results are identical for every value")
	verbose := flag.Bool("v", false, "log per-flow progress")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON report instead of tables")
	var flows flowList
	flag.Var(&flows, "flow", "flow to measure: a named flow or name=script (repeatable; default: the paper's four pipelines)")
	flag.Parse()

	if err := runBench(*scale, *table, *industrial, *check, *jobs, *verbose, *jsonOut, flows, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smartly-bench:", err)
		os.Exit(1)
	}
}

func runBench(scale float64, table string, industrial int, check bool, jobs int,
	verbose, jsonOut bool, flowSpecs []string, out io.Writer) error {
	opts := harness.Options{Scale: scale, Check: check, Jobs: jobs, Workers: jobs}
	if verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	custom := len(flowSpecs) > 0
	if custom {
		fs, err := harness.ParseFlows(flowSpecs)
		if err != nil {
			return err
		}
		opts.Flows = fs
	} else {
		opts.Flows = harness.DefaultFlows()
	}

	start := time.Now()
	var results, points []harness.CaseResult
	var industrialSummary string
	if table == "2" || table == "3" || table == "all" {
		var err error
		if results, err = harness.RunAll(opts); err != nil {
			return err
		}
	}
	if industrial > 0 {
		res, err := harness.RunIndustrial(industrial, opts)
		if err != nil {
			return err
		}
		points = res.Points
		if custom {
			// The §IV-B summary hardcodes the yosys/full columns;
			// custom flow sets get the generic table instead.
			industrialSummary = "Industrial test points\n" +
				harness.TableFlows(points, opts.Flows)
		} else {
			industrialSummary = res.IndustrialSummary()
		}
	}

	if jsonOut {
		rep := harness.NewBenchReport(scale, opts.Flows, results, points, time.Since(start))
		return rep.WriteJSON(out)
	}
	if results != nil {
		switch {
		case custom:
			fmt.Fprintln(out, harness.TableFlows(results, opts.Flows))
		default:
			if table != "3" {
				fmt.Fprintln(out, harness.TableII(results))
			}
			if table != "2" {
				fmt.Fprintln(out, harness.TableIII(results))
			}
		}
	}
	if industrialSummary != "" {
		fmt.Fprintln(out, industrialSummary)
	}
	return nil
}
