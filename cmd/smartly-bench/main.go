// Command smartly-bench regenerates the paper's evaluation: Table II
// (AIG areas, Yosys vs smaRTLy), Table III (per-method reductions) and
// the §IV-B industrial summary — or measures an arbitrary flow set.
//
// Usage:
//
//	smartly-bench [-scale 1.0] [-table 2|3|all] [-industrial n] [-j n] [-check] [-v]
//	              [-json] [-server] [-replica n] [-design n] [-load n] [-sat] [-egraph] [-corpus dir] [-flow name|name=script]...
//
// Scale 1.0 runs the calibrated case sizes (minutes); smaller scales
// reproduce the table shape faster. The paper's absolute circuit sizes
// correspond to roughly scale 100 — see EXPERIMENTS.md.
//
// -flow selects the measured flows (repeatable): either a registered
// named flow ("full") or "name=script" with a flow script, e.g.
// -flow "tuned=fixpoint { opt_expr; satmux(conflicts=64); opt_clean }".
// Without -flow the paper's four pipelines run.
//
// -json replaces the tables with one machine-readable report on stdout
// (schema smartly-bench/v1): per-case areas for every flow, reduction
// ratios vs the first flow, and wall times. BENCH_baseline.json in the
// repository root holds the committed reference run
// (-json -scale 0.25).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

// flowList collects repeated -flow flags.
type flowList []string

func (f *flowList) String() string { return fmt.Sprint(*f) }

func (f *flowList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// benchConfig collects the CLI flags of one run.
type benchConfig struct {
	scale      float64
	table      string
	industrial int
	check      bool
	jobs       int
	verbose    bool
	jsonOut    bool
	server     bool
	replica    int
	design     int
	load       int
	sat        bool
	egraph     bool
	corpus     string
	flows      []string
}

func main() {
	var cfg benchConfig
	flag.Float64Var(&cfg.scale, "scale", 1.0, "benchmark scale factor")
	flag.StringVar(&cfg.table, "table", "all", "which table to regenerate: 2, 3 or all")
	flag.IntVar(&cfg.industrial, "industrial", 0, "also run n industrial test points")
	flag.BoolVar(&cfg.check, "check", false, "equivalence-check every optimized netlist (slow)")
	flag.IntVar(&cfg.jobs, "j", 0, "benchmark cases and SAT-mux queries run concurrently (0 = all cores, 1 = sequential); results are identical for every value")
	flag.BoolVar(&cfg.verbose, "v", false, "log per-flow progress")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit one machine-readable JSON report instead of tables")
	flag.BoolVar(&cfg.server, "server", false, "also measure serving-layer cold vs warm cache latency (in-process smartlyd)")
	flag.IntVar(&cfg.replica, "replica", 0, "also measure the two-replica shared cache tier (HTTP peer protocol) on an n-module design (0 = off)")
	flag.IntVar(&cfg.design, "design", 0, "also measure design-mode sharding cold/warm/incremental latency on an n-module design (0 = off)")
	flag.IntVar(&cfg.load, "load", 0, "also measure the daemon under n concurrent clients on a mixed cold/warm/design workload: throughput + p50/p95/p99 per class (0 = off)")
	flag.BoolVar(&cfg.sat, "sat", false, "also measure the incremental SAT oracle (counters + wall-clock vs the sim_filter=false ablation and the per-query-solver oracle) on the sat and full flows")
	flag.BoolVar(&cfg.egraph, "egraph", false, "also measure verified e-graph rewriting on the datapath benchmark set (yosys vs pre-egraph full vs datapath vs full)")
	flag.StringVar(&cfg.corpus, "corpus", "", "also measure an external benchmark-corpus directory (manifest.json + Verilog) under the yosys/seq/full flows")
	var flows flowList
	flag.Var(&flows, "flow", "flow to measure: a named flow or name=script (repeatable; default: the paper's four pipelines)")
	flag.Parse()
	cfg.flows = flows

	if err := runBench(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smartly-bench:", err)
		os.Exit(1)
	}
}

func runBench(cfg benchConfig, out io.Writer) error {
	opts := harness.Options{Scale: cfg.scale, Check: cfg.check, Jobs: cfg.jobs, Workers: cfg.jobs}
	if cfg.verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	custom := len(cfg.flows) > 0
	if custom {
		fs, err := harness.ParseFlows(cfg.flows)
		if err != nil {
			return err
		}
		opts.Flows = fs
	} else {
		opts.Flows = harness.DefaultFlows()
	}

	start := time.Now()
	var results, points []harness.CaseResult
	var industrialSummary string
	if cfg.table == "2" || cfg.table == "3" || cfg.table == "all" {
		var err error
		if results, err = harness.RunAll(opts); err != nil {
			return err
		}
	}
	if cfg.industrial > 0 {
		res, err := harness.RunIndustrial(cfg.industrial, opts)
		if err != nil {
			return err
		}
		points = res.Points
		if custom {
			// The §IV-B summary hardcodes the yosys/full columns;
			// custom flow sets get the generic table instead.
			industrialSummary = "Industrial test points\n" +
				harness.TableFlows(points, opts.Flows)
		} else {
			industrialSummary = res.IndustrialSummary()
		}
	}
	var serverBench *harness.ServerBench
	if cfg.server {
		sb, err := harness.RunServerBench(serverBenchCase, serverBenchFlow(cfg.flows), cfg.scale, 3)
		if err != nil {
			return err
		}
		serverBench = &sb
	}
	var replicaBench *harness.ReplicaBench
	if cfg.replica > 0 {
		rb, err := harness.RunReplicaBench(cfg.replica, serverBenchFlow(cfg.flows), cfg.scale)
		if err != nil {
			return err
		}
		replicaBench = &rb
	}
	var designBench *harness.DesignBench
	if cfg.design > 0 {
		db, err := harness.RunDesignBench(cfg.design, serverBenchFlow(cfg.flows), cfg.scale, 2)
		if err != nil {
			return err
		}
		designBench = &db
	}
	var loadBench *harness.LoadBench
	if cfg.load > 0 {
		lb, err := harness.RunLoadBench(loadBenchCase, cfg.load, serverBenchFlow(cfg.flows), cfg.scale, 2)
		if err != nil {
			return err
		}
		loadBench = &lb
	}
	var satBench *harness.SatBench
	if cfg.sat {
		sb, err := harness.RunSatBench([]string{harness.FlowSAT, harness.FlowFull}, cfg.scale)
		if err != nil {
			return err
		}
		satBench = &sb
	}
	var egraphBench *harness.EgraphBench
	if cfg.egraph {
		eb, err := harness.RunEgraphBench(cfg.scale)
		if err != nil {
			return err
		}
		egraphBench = &eb
	}
	var corpusBench *harness.CorpusBench
	if cfg.corpus != "" {
		cb, err := harness.RunCorpusBench(cfg.corpus)
		if err != nil {
			return err
		}
		corpusBench = &cb
	}

	if cfg.jsonOut {
		rep := harness.NewBenchReport(cfg.scale, opts.Flows, results, points, time.Since(start))
		rep.Server = serverBench
		rep.Replica = replicaBench
		rep.Design = designBench
		rep.Load = loadBench
		rep.Sat = satBench
		rep.Egraph = egraphBench
		rep.Corpus = corpusBench
		return rep.WriteJSON(out)
	}
	if results != nil {
		switch {
		case custom:
			fmt.Fprintln(out, harness.TableFlows(results, opts.Flows))
		default:
			if cfg.table != "3" {
				fmt.Fprintln(out, harness.TableII(results))
			}
			if cfg.table != "2" {
				fmt.Fprintln(out, harness.TableIII(results))
			}
		}
	}
	if industrialSummary != "" {
		fmt.Fprintln(out, industrialSummary)
	}
	if serverBench != nil {
		fmt.Fprintln(out, serverBench.String())
	}
	if replicaBench != nil {
		fmt.Fprintln(out, replicaBench.String())
	}
	if designBench != nil {
		fmt.Fprintln(out, designBench.String())
	}
	if loadBench != nil {
		fmt.Fprintln(out, loadBench.String())
	}
	if satBench != nil {
		fmt.Fprintln(out, satBench.String())
	}
	if egraphBench != nil {
		fmt.Fprintln(out, egraphBench.String())
	}
	if corpusBench != nil {
		fmt.Fprintln(out, corpusBench.String())
	}
	return nil
}

// serverBenchCase is the fixed case the -server latency smoke measures:
// the first public benchmark, so numbers are comparable across runs.
const serverBenchCase = "top_cache_axi"

// loadBenchCase is the fixed case of the -load concurrent smoke: the
// smallest public benchmark, so n clients' cold requests stay CI-sized.
const loadBenchCase = "ethernet"

// serverBenchFlow picks the daemon-side flow for -server: the first
// -flow spec when it is a bare registered name, else "full".
func serverBenchFlow(flowSpecs []string) string {
	if len(flowSpecs) > 0 && !strings.Contains(flowSpecs[0], "=") {
		return flowSpecs[0]
	}
	return "full"
}
