package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/server"
)

func TestRunVerilogInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	o := options{flowName: "full", outPath: out, check: true, quiet: true}
	if err := run("../../testdata/fig3.v", o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := smartly.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Top() == nil || d.Top().NumCells() == 0 {
		t.Error("optimized JSON netlist empty")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "a.json")
	if err := run("../../testdata/case4.v", options{flowName: "yosys", outPath: first, quiet: true}); err != nil {
		t.Fatal(err)
	}
	// Feed the JSON back in with a different flow.
	second := filepath.Join(dir, "b.json")
	if err := run(first, options{flowName: "full", outPath: second, check: true, quiet: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllNamedFlows(t *testing.T) {
	for _, p := range []string{"yosys", "sat", "rebuild", "full"} {
		if err := run("../../testdata/case4.v", options{flowName: p, check: true, quiet: true}); err != nil {
			t.Errorf("flow %s: %v", p, err)
		}
	}
}

func TestRunScriptFlow(t *testing.T) {
	script := "fixpoint { opt_expr; satmux(conflicts=500); opt_clean }"
	if err := run("../../testdata/fig3.v", options{script: script, check: true, quiet: true}); err != nil {
		t.Fatalf("script flow: %v", err)
	}
	// With timings enabled the run must still succeed.
	if err := run("../../testdata/fig3.v", options{script: "opt_expr; opt_clean", quiet: true, timings: true}); err != nil {
		t.Fatalf("script flow with timings: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("missing.v", options{flowName: "full", quiet: true}); err == nil {
		t.Error("missing file accepted")
	}
	// An unknown flow error must name the offending flow.
	if err := run("../../testdata/fig3.v", options{flowName: "bogus", quiet: true}); err == nil ||
		!strings.Contains(err.Error(), "unknown flow") || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("bogus flow: %v", err)
	}
	if err := run("../../testdata/fig3.v", options{script: "satmux(gain=2)", quiet: true}); err == nil ||
		!strings.Contains(err.Error(), "unknown option") {
		t.Errorf("bogus script: %v", err)
	}
}

// TestCheckFlowFlags is the regression test for the silently-ignored
// flag combination: an explicit -flow together with -script must be
// rejected with a usage hint (main exits 2 on this error).
func TestCheckFlowFlags(t *testing.T) {
	err := checkFlowFlags(true, "opt_expr; opt_clean")
	if err == nil {
		t.Fatal("-flow + -script accepted")
	}
	for _, want := range []string{"mutually exclusive", "-flow", "-script"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict error %q misses %q", err, want)
		}
	}
	// Each alone is fine; the -flow default with a script is fine too.
	if err := checkFlowFlags(false, "opt_expr"); err != nil {
		t.Errorf("script only: %v", err)
	}
	if err := checkFlowFlags(true, ""); err != nil {
		t.Errorf("flow only: %v", err)
	}
	if err := checkFlowFlags(false, ""); err != nil {
		t.Errorf("defaults: %v", err)
	}
}

func TestSelectFlowLabels(t *testing.T) {
	f, label, err := selectFlow("full", "")
	if err != nil || f == nil || label != "full" {
		t.Errorf("named: %v %q %v", f, label, err)
	}
	f, label, err = selectFlow("", "opt_expr; opt_clean")
	if err != nil || f == nil || label != "opt_expr; opt_clean" {
		t.Errorf("script: %v %q %v", f, label, err)
	}
}

// readHash loads a JSON netlist and returns its canonical design hash.
func readHash(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := smartly.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return smartly.HashDesign(d)
}

// TestRunRemote drives the full -remote path against an in-process
// smartlyd and checks it matches the local run byte for byte.
func TestRunRemote(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.json")
	remoteOut := filepath.Join(dir, "remote.json")
	if err := run("../../testdata/fig3.v", options{flowName: "full", outPath: localOut, quiet: true}); err != nil {
		t.Fatal(err)
	}
	o := options{flowName: "full", remote: ts.URL, outPath: remoteOut, check: true, quiet: true}
	if err := run("../../testdata/fig3.v", o); err != nil {
		t.Fatal(err)
	}
	// The remote payload goes through one extra JSON round-trip (which
	// normalizes wire order), so compare canonical content hashes, not
	// raw bytes.
	if readHash(t, localOut) != readHash(t, remoteOut) {
		t.Error("remote -o netlist differs from local -o netlist")
	}

	// Remote with a script instead of a named flow.
	if err := run("../../testdata/fig3.v", options{script: "opt_expr; opt_clean", remote: ts.URL, quiet: true}); err != nil {
		t.Fatalf("remote script: %v", err)
	}
	// Remote errors surface the daemon message.
	if err := run("../../testdata/fig3.v", options{flowName: "bogus", remote: ts.URL, quiet: true}); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Errorf("remote bogus flow: %v", err)
	}
}

// TestRunRemoteDesignMode ships a multi-module design with -mode design
// and checks the sharded response round-trips (and survives -check).
func TestRunRemoteDesignMode(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	// Build a two-module design input file.
	d := smartly.NewDesign()
	for _, src := range []string{
		"module a(input x, input y, input s, output o);\n  assign o = s ? (s ? x : y) : y;\nendmodule\n",
		"module b(input x, input y, output o);\n  assign o = x & y;\nendmodule\n",
	} {
		pd, err := smartly.ParseVerilog(src)
		if err != nil {
			t.Fatal(err)
		}
		d.AddModule(pd.Modules()[0])
	}
	in := filepath.Join(t.TempDir(), "design.json")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := smartly.WriteJSON(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o := options{flowName: "full", remote: ts.URL, mode: "design", check: true, quiet: true}
	if err := run(in, o); err != nil {
		t.Fatalf("remote design mode: %v", err)
	}
	// A second run must be served from the module tier (asserted by the
	// daemon-side counters; here it must simply still verify).
	if err := run(in, o); err != nil {
		t.Fatalf("remote design mode warm: %v", err)
	}
	// An invalid mode surfaces the daemon's 400.
	err = run(in, options{flowName: "full", remote: ts.URL, mode: "bogus", quiet: true})
	if err == nil || !strings.Contains(err.Error(), "mode") {
		t.Errorf("remote bogus mode: %v", err)
	}
}
