package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rtlil"
)

func TestRunVerilogInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	if err := run("../../testdata/fig3.v", "full", out, true, true, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := rtlil.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Top() == nil || d.Top().NumCells() == 0 {
		t.Error("optimized JSON netlist empty")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "a.json")
	if err := run("../../testdata/case4.v", "yosys", first, false, true, 0); err != nil {
		t.Fatal(err)
	}
	// Feed the JSON back in with a different pipeline.
	second := filepath.Join(dir, "b.json")
	if err := run(first, "full", second, true, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllPipelines(t *testing.T) {
	for _, p := range []string{"yosys", "sat", "rebuild", "full"} {
		if err := run("../../testdata/case4.v", p, "", true, true, 0); err != nil {
			t.Errorf("pipeline %s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("missing.v", "full", "", false, true, 0); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("../../testdata/fig3.v", "bogus", "", false, true, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown pipeline") {
		t.Errorf("bogus pipeline: %v", err)
	}
}
