package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunVerilogInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	if err := run("../../testdata/fig3.v", "full", "", out, true, true, 0, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := smartly.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Top() == nil || d.Top().NumCells() == 0 {
		t.Error("optimized JSON netlist empty")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "a.json")
	if err := run("../../testdata/case4.v", "yosys", "", first, false, true, 0, false); err != nil {
		t.Fatal(err)
	}
	// Feed the JSON back in with a different flow.
	second := filepath.Join(dir, "b.json")
	if err := run(first, "full", "", second, true, true, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllNamedFlows(t *testing.T) {
	for _, p := range []string{"yosys", "sat", "rebuild", "full"} {
		if err := run("../../testdata/case4.v", p, "", "", true, true, 0, false); err != nil {
			t.Errorf("flow %s: %v", p, err)
		}
	}
}

func TestRunScriptFlow(t *testing.T) {
	script := "fixpoint { opt_expr; satmux(conflicts=500); opt_clean }"
	if err := run("../../testdata/fig3.v", "", script, "", true, true, 0, false); err != nil {
		t.Fatalf("script flow: %v", err)
	}
	// With timings enabled the run must still succeed.
	if err := run("../../testdata/fig3.v", "", "opt_expr; opt_clean", "", false, true, 0, true); err != nil {
		t.Fatalf("script flow with timings: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("missing.v", "full", "", "", false, true, 0, false); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("../../testdata/fig3.v", "bogus", "", "", false, true, 0, false); err == nil ||
		!strings.Contains(err.Error(), "unknown flow") {
		t.Errorf("bogus flow: %v", err)
	}
	if err := run("../../testdata/fig3.v", "", "satmux(gain=2)", "", false, true, 0, false); err == nil ||
		!strings.Contains(err.Error(), "unknown option") {
		t.Errorf("bogus script: %v", err)
	}
}

func TestSelectFlowLabels(t *testing.T) {
	f, label, err := selectFlow("full", "")
	if err != nil || f == nil || label != "full" {
		t.Errorf("named: %v %q %v", f, label, err)
	}
	f, label, err = selectFlow("", "opt_expr; opt_clean")
	if err != nil || f == nil || label != "opt_expr; opt_clean" {
		t.Errorf("script: %v %q %v", f, label, err)
	}
}
