// Command smartly optimizes an RTL netlist with composable optimization
// flows.
//
// It reads a design from a Verilog source file (.v) or a JSON netlist
// (.json, as written by -o), runs the selected flow — a named pipeline
// or an arbitrary Yosys-style script — prints before/after statistics,
// AIG areas and the per-pass run report, and optionally writes the
// optimized netlist back out as JSON.
//
// Usage:
//
//	smartly [-flow yosys|sat|rebuild|full] [-script "opt_expr; satmux(conflicts=64); opt_clean"]
//	        [-j n] [-timings] [-o out.json] [-check] design.v
//
// The script grammar is pass [ "(" key=value {"," key=value} ")" ]
// separated by ";", plus the fixpoint wrapper
// "fixpoint(iters=n) { ... }"; run with -passes to list the registry.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	pipeline := flag.String("pipeline", "", "deprecated alias of -flow")
	flowName := flag.String("flow", "full", "named optimization flow: yosys|sat|rebuild|full")
	script := flag.String("script", "", "run this flow script instead of a named flow (e.g. \"opt_expr; satmux(conflicts=64); opt_clean\")")
	listPasses := flag.Bool("passes", false, "list the registered passes and their options, then exit")
	outPath := flag.String("o", "", "write optimized netlist as JSON to this path")
	check := flag.Bool("check", false, "equivalence-check the optimized netlist against the input")
	quiet := flag.Bool("q", false, "print only the final area line")
	timings := flag.Bool("timings", false, "include per-pass wall times in the run report")
	jobs := flag.Int("j", 0, "worker budget: modules optimized concurrently and parallel SAT-mux queries (0 = all cores, 1 = sequential)")
	flag.Parse()
	if *listPasses {
		printPasses()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smartly [flags] design.v|design.json")
		flag.PrintDefaults()
		os.Exit(2)
	}
	name := *flowName
	if *pipeline != "" {
		name = *pipeline
	}
	if err := run(flag.Arg(0), name, *script, *outPath, *check, *quiet, *jobs, *timings); err != nil {
		fmt.Fprintln(os.Stderr, "smartly:", err)
		os.Exit(1)
	}
}

// printPasses renders the pass registry as a small reference table.
func printPasses() {
	fmt.Println("registered passes (compose with ';'):")
	for _, spec := range smartly.Passes() {
		fmt.Printf("  %-12s %s\n", spec.Name, spec.Summary)
		for _, o := range spec.Options {
			fmt.Printf("    %-22s %-6s default=%-5s %s\n", o.Key, o.Kind, o.Default, o.Help)
		}
	}
	fmt.Println("built-in wrapper:")
	fmt.Println("  fixpoint     repeat { body } until no pass reports a change")
	fmt.Printf("    %-22s %-6s default=%-5s %s\n", "iters", "int", "10", "maximum iterations")
	fmt.Println("named flows:", strings.Join(smartly.FlowNames(), ", "))
}

// selectFlow resolves the -script / -flow flags into a flow and a label
// for the report line.
func selectFlow(name, script string) (*smartly.Flow, string, error) {
	if script != "" {
		f, err := smartly.ParseFlow(script)
		if err != nil {
			return nil, "", err
		}
		return f, f.String(), nil
	}
	// Any registered named flow works; the legacy pipeline aliases
	// ("baseline", "smartly", ...) are accepted as a fallback.
	f, err := smartly.NamedFlow(name)
	if err != nil {
		if p, aliasErr := smartly.ParsePipeline(name); aliasErr == nil {
			if f, err2 := smartly.NamedFlow(p.String()); err2 == nil {
				return f, p.String(), nil
			}
		}
		return nil, "", err
	}
	return f, name, nil
}

func run(path, flowName, script, outPath string, check, quiet bool, jobs int, timings bool) error {
	design, err := readDesign(path)
	if err != nil {
		return err
	}
	flow, label, err := selectFlow(flowName, script)
	if err != nil {
		return err
	}

	// Snapshot per-module "before" state, then optimize all modules
	// concurrently; the report map keeps the printout deterministic.
	type moduleInfo struct {
		orig        *smartly.Module
		before      int
		beforeStats smartly.Stats
	}
	infos := make(map[string]moduleInfo, len(design.Modules()))
	for _, m := range design.Modules() {
		info := moduleInfo{beforeStats: smartly.CollectStats(m)}
		if check {
			info.orig = m.Clone()
		}
		if info.before, err = smartly.Area(m); err != nil {
			return fmt.Errorf("module %s: %w", m.Name, err)
		}
		infos[m.Name] = info
	}
	opts := []smartly.RunOption{smartly.WithWorkers(jobs)}
	if timings {
		opts = append(opts, smartly.WithTimings())
	}
	reports, err := flow.RunDesign(design, opts...)
	if err != nil {
		return err
	}
	for _, m := range design.Modules() {
		info := infos[m.Name]
		after, err := smartly.Area(m)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("== module %s ==\n", m.Name)
			fmt.Print(info.beforeStats)
		}
		if check {
			if err := smartly.CheckEquivalence(info.orig, m); err != nil {
				return fmt.Errorf("module %s failed equivalence check: %w", m.Name, err)
			}
			if !quiet {
				fmt.Println("equivalence check passed")
			}
		}
		if !quiet {
			fmt.Println("after optimization:")
			fmt.Print(smartly.CollectStats(m))
			rep := reports[m.Name]
			fmt.Print((&rep).String())
		}
		reduction := 0.0
		if info.before > 0 {
			reduction = 100 * float64(info.before-after) / float64(info.before)
		}
		fmt.Printf("%s: AIG area %d -> %d (%.2f%% reduction, flow=%s)\n",
			m.Name, info.before, after, reduction, label)
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := smartly.WriteJSON(f, design); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("wrote %s\n", outPath)
		}
	}
	return nil
}

func readDesign(path string) (*smartly.Design, error) {
	if strings.HasSuffix(path, ".json") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return smartly.ReadJSON(f)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return smartly.ParseVerilog(string(data))
}
