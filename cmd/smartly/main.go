// Command smartly optimizes an RTL netlist with the smaRTLy passes.
//
// It reads a design from a Verilog source file (.v) or a JSON netlist
// (.json, as written by -o), runs the selected optimization pipeline,
// prints before/after statistics and AIG areas, and optionally writes
// the optimized netlist back out as JSON.
//
// Usage:
//
//	smartly [-pipeline yosys|sat|rebuild|full] [-j n] [-o out.json] [-check] design.v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cec"
	"repro/internal/rtlil"

	"repro"
)

func main() {
	pipeline := flag.String("pipeline", "full", "optimization pipeline: yosys|sat|rebuild|full")
	outPath := flag.String("o", "", "write optimized netlist as JSON to this path")
	check := flag.Bool("check", false, "equivalence-check the optimized netlist against the input")
	quiet := flag.Bool("q", false, "print only the final area line")
	jobs := flag.Int("j", 0, "worker budget: modules optimized concurrently and parallel SAT-mux queries (0 = all cores, 1 = sequential)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smartly [flags] design.v|design.json")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *pipeline, *outPath, *check, *quiet, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "smartly:", err)
		os.Exit(1)
	}
}

func run(path, pipelineName, outPath string, check, quiet bool, jobs int) error {
	design, err := readDesign(path)
	if err != nil {
		return err
	}
	pipe, err := smartly.ParsePipeline(pipelineName)
	if err != nil {
		return err
	}

	// Snapshot per-module "before" state, then optimize all modules
	// concurrently; the report map keeps the printout deterministic.
	type moduleInfo struct {
		orig        *smartly.Module
		before      int
		beforeStats rtlil.Stats
	}
	infos := make(map[string]moduleInfo, len(design.Modules()))
	for _, m := range design.Modules() {
		info := moduleInfo{beforeStats: rtlil.CollectStats(m)}
		if check {
			info.orig = m.Clone()
		}
		if info.before, err = smartly.Area(m); err != nil {
			return fmt.Errorf("module %s: %w", m.Name, err)
		}
		infos[m.Name] = info
	}
	reports, err := smartly.OptimizeDesign(context.Background(), design, pipe,
		smartly.OptimizeOptions{Workers: jobs})
	if err != nil {
		return err
	}
	for _, m := range design.Modules() {
		info := infos[m.Name]
		after, err := smartly.Area(m)
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("== module %s ==\n", m.Name)
			fmt.Print(info.beforeStats)
		}
		if check {
			if err := cec.Check(info.orig, m, nil); err != nil {
				return fmt.Errorf("module %s failed equivalence check: %w", m.Name, err)
			}
			if !quiet {
				fmt.Println("equivalence check passed")
			}
		}
		if !quiet {
			fmt.Println("after optimization:")
			fmt.Print(rtlil.CollectStats(m))
			for k, v := range reports[m.Name].Details {
				fmt.Printf("  %s: %d\n", k, v)
			}
		}
		reduction := 0.0
		if info.before > 0 {
			reduction = 100 * float64(info.before-after) / float64(info.before)
		}
		fmt.Printf("%s: AIG area %d -> %d (%.2f%% reduction, pipeline=%s)\n",
			m.Name, info.before, after, reduction, pipe)
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rtlil.WriteJSON(f, design); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("wrote %s\n", outPath)
		}
	}
	return nil
}

func readDesign(path string) (*smartly.Design, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		return rtlil.ReadJSON(strings.NewReader(string(data)))
	}
	return smartly.ParseVerilog(string(data))
}
