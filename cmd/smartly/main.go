// Command smartly optimizes an RTL netlist with composable optimization
// flows.
//
// It reads a design from a Verilog source file (.v) or a JSON netlist
// (.json, as written by -o), runs the selected flow — a named pipeline
// or an arbitrary Yosys-style script — prints before/after statistics,
// AIG areas and the per-pass run report, and optionally writes the
// optimized netlist back out as JSON.
//
// Usage:
//
//	smartly [-flow yosys|sat|rebuild|full] [-script "opt_expr; satmux(conflicts=64); opt_clean"]
//	        [-remote http://host:8080] [-mode whole|design] [-j n] [-module-jobs n]
//	        [-timings] [-o out.json] [-check] design.v
//
// -script and -flow are mutually exclusive. With -remote the design is
// shipped to a smartlyd daemon (cmd/smartlyd) instead of being
// optimized in-process; everything else — areas, equivalence check,
// -o output — behaves the same.
//
// The script grammar is pass [ "(" key=value {"," key=value} ")" ]
// separated by ";", plus the fixpoint wrapper
// "fixpoint(iters=n) { ... }"; run with -passes to list the registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/client"
)

// options collects the CLI flags of one invocation.
type options struct {
	flowName   string
	script     string
	remote     string
	mode       string
	outPath    string
	check      bool
	quiet      bool
	timings    bool
	jobs       int
	moduleJobs int
}

func main() {
	var o options
	pipeline := flag.String("pipeline", "", "deprecated alias of -flow")
	flag.StringVar(&o.flowName, "flow", "full", "named optimization flow: yosys|sat|rebuild|full")
	flag.StringVar(&o.script, "script", "", "run this flow script instead of a named flow (e.g. \"opt_expr; satmux(conflicts=64); opt_clean\")")
	flag.StringVar(&o.remote, "remote", "", "optimize via a smartlyd daemon at this base URL instead of in-process")
	listPasses := flag.Bool("passes", false, "list the registered passes and their options, then exit")
	flag.StringVar(&o.outPath, "o", "", "write optimized netlist as JSON to this path")
	flag.BoolVar(&o.check, "check", false, "equivalence-check the optimized netlist against the input")
	flag.BoolVar(&o.quiet, "q", false, "print only the final area line")
	flag.BoolVar(&o.timings, "timings", false, "include per-pass wall times in the run report")
	flag.IntVar(&o.jobs, "j", 0, "worker budget, split between concurrently optimized modules and parallel SAT-mux queries (0 = all cores, 1 = sequential)")
	flag.IntVar(&o.moduleJobs, "module-jobs", 0, "modules optimized concurrently, local runs only (0 = derive from -j; capped by -j; results identical for every value)")
	flag.StringVar(&o.mode, "mode", "", "with -remote: daemon cache granularity, whole (one entry per design) or design (per-module entries, incremental resubmits); empty = daemon default")
	flag.Parse()
	if *listPasses {
		printPasses()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smartly [flags] design.v|design.json")
		flag.PrintDefaults()
		os.Exit(2)
	}
	flowSet := *pipeline != ""
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "flow" {
			flowSet = true
		}
	})
	if err := checkFlowFlags(flowSet, o.script); err != nil {
		fmt.Fprintln(os.Stderr, "smartly:", err)
		os.Exit(2)
	}
	if o.mode != "" && o.remote == "" {
		fmt.Fprintln(os.Stderr, "smartly: -mode selects the daemon's cache granularity and needs -remote")
		os.Exit(2)
	}
	if o.moduleJobs != 0 && o.remote != "" {
		fmt.Fprintln(os.Stderr, "smartly: -module-jobs tunes the local shard scheduler; the daemon manages its own split (drop it, or tune -j)")
		os.Exit(2)
	}
	if *pipeline != "" {
		o.flowName = *pipeline
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, "smartly:", err)
		os.Exit(1)
	}
}

// checkFlowFlags rejects contradictory flow selections: an explicit
// -flow (or -pipeline) combined with -script would silently ignore one
// of them.
func checkFlowFlags(flowSet bool, script string) error {
	if flowSet && script != "" {
		return fmt.Errorf("-flow and -script are mutually exclusive; pass a named flow (-flow full) OR a script (-script \"opt_expr; opt_clean\"), not both")
	}
	return nil
}

// printPasses renders the pass registry as a small reference table.
func printPasses() {
	fmt.Println("registered passes (compose with ';'):")
	for _, spec := range smartly.Passes() {
		fmt.Printf("  %-12s %s\n", spec.Name, spec.Summary)
		for _, o := range spec.Options {
			fmt.Printf("    %-22s %-6s default=%-5s %s\n", o.Key, o.Kind, o.Default, o.Help)
		}
	}
	fmt.Println("built-in wrapper:")
	fmt.Println("  fixpoint     repeat { body } until no pass reports a change")
	fmt.Printf("    %-22s %-6s default=%-5s %s\n", "iters", "int", "10", "maximum iterations")
	fmt.Println("named flows:", strings.Join(smartly.FlowNames(), ", "))
}

// selectFlow resolves the -script / -flow flags into a flow and a label
// for the report line.
func selectFlow(name, script string) (*smartly.Flow, string, error) {
	if script != "" {
		f, err := smartly.ParseFlow(script)
		if err != nil {
			return nil, "", err
		}
		return f, f.String(), nil
	}
	// Any registered named flow works; the legacy pipeline aliases
	// ("baseline", "smartly", ...) are accepted as a fallback.
	f, err := smartly.NamedFlow(name)
	if err != nil {
		if p, aliasErr := smartly.ParsePipeline(name); aliasErr == nil {
			if f, err2 := smartly.NamedFlow(p.String()); err2 == nil {
				return f, p.String(), nil
			}
		}
		return nil, "", err
	}
	return f, name, nil
}

// moduleInfo snapshots a module's pre-optimization state.
type moduleInfo struct {
	orig        *smartly.Module
	before      int
	beforeStats smartly.Stats
}

// snapshot records every module's "before" state (area, stats and — for
// -check — a clone of the netlist).
func snapshot(design *smartly.Design, check bool) (map[string]moduleInfo, error) {
	infos := make(map[string]moduleInfo, len(design.Modules()))
	for _, m := range design.Modules() {
		info := moduleInfo{beforeStats: smartly.CollectStats(m)}
		if check {
			info.orig = m.Clone()
		}
		var err error
		if info.before, err = smartly.Area(m); err != nil {
			return nil, fmt.Errorf("module %s: %w", m.Name, err)
		}
		infos[m.Name] = info
	}
	return infos, nil
}

func run(path string, o options) error {
	design, err := readDesign(path)
	if err != nil {
		return err
	}
	if o.remote != "" {
		return runRemote(path, design, o)
	}
	flow, label, err := selectFlow(o.flowName, o.script)
	if err != nil {
		return err
	}

	// Snapshot per-module "before" state, then optimize all modules
	// concurrently; the report map keeps the printout deterministic.
	infos, err := snapshot(design, o.check)
	if err != nil {
		return err
	}
	opts := []smartly.RunOption{smartly.WithWorkers(o.jobs), smartly.WithModuleJobs(o.moduleJobs)}
	if o.timings {
		opts = append(opts, smartly.WithTimings())
	}
	reports, err := flow.RunDesign(design, opts...)
	if err != nil {
		return err
	}
	for _, m := range design.Modules() {
		rep := reports[m.Name]
		err := renderModule(m, infos[m.Name], o, "flow="+label, func() {
			fmt.Print((&rep).String())
		})
		if err != nil {
			return err
		}
	}
	return writeOut(design, o)
}

// renderModule prints one module's post-optimization block — before
// stats, equivalence check, after stats, the run report (printReport)
// and the summary area line — shared by the local and remote paths.
func renderModule(m *smartly.Module, info moduleInfo, o options, suffix string, printReport func()) error {
	after, err := smartly.Area(m)
	if err != nil {
		return err
	}
	if !o.quiet {
		fmt.Printf("== module %s ==\n", m.Name)
		fmt.Print(info.beforeStats)
	}
	if o.check {
		if err := smartly.CheckEquivalence(info.orig, m); err != nil {
			return fmt.Errorf("module %s failed equivalence check: %w", m.Name, err)
		}
		if !o.quiet {
			fmt.Println("equivalence check passed")
		}
	}
	if !o.quiet {
		fmt.Println("after optimization:")
		fmt.Print(smartly.CollectStats(m))
		printReport()
	}
	printAreaLine(m.Name, info.before, after, suffix)
	return nil
}

// runRemote ships the design to a smartlyd daemon and renders the same
// area/check/output flow over the response.
func runRemote(path string, design *smartly.Design, o options) error {
	infos, err := snapshot(design, o.check)
	if err != nil {
		return err
	}
	flowName := o.flowName
	if o.script != "" {
		flowName = ""
	}
	var copts []client.RequestOption
	if o.jobs > 0 {
		copts = append(copts, client.WithWorkers(o.jobs))
	}
	if o.timings {
		copts = append(copts, client.WithTimings())
	}
	if o.mode != "" {
		copts = append(copts, client.WithMode(o.mode))
	}
	c := client.New(o.remote)
	out, resp, err := c.OptimizeDesign(context.Background(), design, flowName, o.script, copts...)
	if err != nil {
		return err
	}
	suffix := fmt.Sprintf("flow=%s, remote cache=%s", resp.Flow, resp.Cache)
	if resp.ModuleCache != nil {
		suffix += fmt.Sprintf(", module hits %d/%d",
			resp.ModuleCache.Hits, resp.ModuleCache.Hits+resp.ModuleCache.Misses)
	}
	for _, m := range out.Modules() {
		info, ok := infos[m.Name]
		if !ok {
			return fmt.Errorf("daemon returned unknown module %q", m.Name)
		}
		rep, hasRep := resp.Reports[m.Name]
		err := renderModule(m, info, o, suffix, func() {
			if !hasRep {
				return
			}
			fmt.Printf("changed=%v\n", rep.Changed)
			for _, p := range rep.Passes {
				fmt.Printf("  %-18s calls=%d counters=%v\n", p.Name, p.Calls, p.Counters)
			}
		})
		if err != nil {
			return err
		}
	}
	return writeOut(out, o)
}

// printAreaLine renders the one-line summary every mode ends with.
func printAreaLine(name string, before, after int, suffix string) {
	reduction := 0.0
	if before > 0 {
		reduction = 100 * float64(before-after) / float64(before)
	}
	fmt.Printf("%s: AIG area %d -> %d (%.2f%% reduction, %s)\n", name, before, after, reduction, suffix)
}

// writeOut writes the optimized design when -o was given.
func writeOut(design *smartly.Design, o options) error {
	if o.outPath == "" {
		return nil
	}
	f, err := os.Create(o.outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := smartly.WriteJSON(f, design); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Printf("wrote %s\n", o.outPath)
	}
	return nil
}

func readDesign(path string) (*smartly.Design, error) {
	if strings.HasSuffix(path, ".json") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return smartly.ReadJSON(f)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return smartly.ParseVerilog(string(data))
}
