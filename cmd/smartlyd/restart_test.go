package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/genbench"
	"repro/internal/server/api"
)

// TestMain doubles as the daemon helper process for the kill -9 e2e:
// when SMARTLYD_E2E_ADDR is set, the binary IS smartlyd (the real serve
// path, signal handling and all) instead of the test suite.
func TestMain(m *testing.M) {
	if addr := os.Getenv("SMARTLYD_E2E_ADDR"); addr != "" {
		o := options{
			addr:     addr,
			jobs:     1,
			cacheDir: os.Getenv("SMARTLYD_E2E_CACHE"),
			flow:     "yosys",
			drain:    5 * time.Second,
			quiet:    true,
		}
		if err := serve(o); err != nil {
			fmt.Fprintln(os.Stderr, "smartlyd helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// designRequest builds an async optimize request over a generated
// design (distinct seeds give distinct cache keys, so every job is its
// own computation).
func designRequest(t *testing.T, seed int64) api.OptimizeRequest {
	t.Helper()
	d := genbench.GenerateDesign(genbench.DesignRecipe{Modules: 4, Seed: seed}, 0.02)
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return api.OptimizeRequest{Design: buf.Bytes(), Flow: "full"}
}

// TestKillDashNineRecovery is the durability acceptance test: a daemon
// holding finished, running and queued async jobs is killed with
// SIGKILL — no drain, no goodbye — and restarted over the same
// directories. The finished job must re-serve its payload, the
// interrupted ones must run to completion under their original ids, and
// a client.Wait started before the kill must complete against the
// restarted daemon.
func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: spawns and kills daemon processes")
	}
	dir := t.TempDir()
	addr := freeAddr(t)
	startDaemon := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=none")
		cmd.Env = append(os.Environ(),
			"SMARTLYD_E2E_ADDR="+addr,
			"SMARTLYD_E2E_CACHE="+filepath.Join(dir, "cache"))
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	p1 := startDaemon()
	waitHealthy(t, ctx, c)

	// One job runs to completion before the kill...
	finished, err := c.OptimizeAsync(ctx, designRequest(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.Wait(ctx, finished.ID, 20*time.Millisecond)
	if err != nil || done.Result == nil {
		t.Fatalf("pre-kill job: %v (result nil=%v)", err, done.Result == nil)
	}
	// ...and with -jobs 1 these three serialize: when the kill lands at
	// most one is running and the rest are queued.
	var pending []api.Job
	for seed := int64(2); seed <= 4; seed++ {
		j, err := c.OptimizeAsync(ctx, designRequest(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, j)
	}
	// A Wait in flight across the kill: it must ride out the restart.
	type waited struct {
		job api.Job
		err error
	}
	waiterc := make(chan waited, 1)
	go func() {
		j, err := c.Wait(ctx, pending[0].ID, 20*time.Millisecond)
		waiterc <- waited{j, err}
	}()

	if err := p1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p1.Wait()

	p2 := startDaemon()
	defer func() {
		p2.Process.Signal(syscall.SIGTERM)
		p2.Wait()
	}()
	waitHealthy(t, ctx, c)

	// The finished job re-serves its payload under the original id.
	replayed, err := c.Job(ctx, finished.ID)
	if err != nil {
		t.Fatalf("finished job lost across restart: %v", err)
	}
	if replayed.State != api.JobDone || replayed.Result == nil {
		t.Fatalf("finished job replayed as %s (result nil=%v)", replayed.State, replayed.Result == nil)
	}
	if !bytes.Equal(replayed.Result.Design, done.Result.Design) {
		t.Error("re-served payload differs from the pre-kill result")
	}
	// The interrupted jobs run to completion under their original ids.
	for _, j := range pending {
		got, err := c.Wait(ctx, j.ID, 20*time.Millisecond)
		if err != nil || got.State != api.JobDone || got.Result == nil {
			t.Fatalf("recovered job %s: %v state=%s", j.ID, err, got.State)
		}
	}
	// And the Wait that spanned the kill came home.
	w := <-waiterc
	if w.err != nil || w.job.State != api.JobDone || w.job.Result == nil {
		t.Fatalf("in-flight Wait across restart: %v state=%s", w.err, w.job.State)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, ctx context.Context, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err == nil && h.Status == "ok" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
