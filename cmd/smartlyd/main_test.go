package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/client"
)

func TestNewServerServesRequests(t *testing.T) {
	dir := t.TempDir()
	s, err := newServer(options{
		jobs:     2,
		cacheDir: filepath.Join(dir, "cache"),
		cacheMiB: 1,
		flow:     "yosys",
		quiet:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL)
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v %v", h, err)
	}
	if h.Cache.MaxBytes != 1<<20 {
		t.Errorf("cache bound %d, want 1 MiB", h.Cache.MaxBytes)
	}

	d, err := smartly.ParseVerilog("module top(input a, input b, input s, output y);\n  assign y = s ? a : b;\nendmodule\n")
	if err != nil {
		t.Fatal(err)
	}
	// Empty flow name: the daemon's -flow default applies.
	out, resp, err := c.OptimizeDesign(context.Background(), d, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Top() == nil {
		t.Fatal("no top module in response")
	}
	want, _ := smartly.NamedFlow("yosys")
	if resp.Flow != want.Canonical() {
		t.Errorf("default flow %q, want canonical yosys %q", resp.Flow, want.Canonical())
	}
}

func TestNewServerBadCacheDir(t *testing.T) {
	// A file where the cache directory should be must fail startup.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(options{cacheDir: filepath.Join(blocker, "sub")}); err == nil {
		t.Error("cache dir under a regular file accepted")
	}
}
