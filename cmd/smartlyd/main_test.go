package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/client"
	"repro/internal/genbench"
	"repro/internal/server/api"
)

func TestNewServerServesRequests(t *testing.T) {
	dir := t.TempDir()
	s, err := newServer(options{
		jobs:     2,
		cacheDir: filepath.Join(dir, "cache"),
		cacheMiB: 1,
		flow:     "yosys",
		quiet:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL)
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v %v", h, err)
	}
	if h.Cache.MaxBytes != 1<<20 {
		t.Errorf("cache bound %d, want 1 MiB", h.Cache.MaxBytes)
	}

	d, err := smartly.ParseVerilog("module top(input a, input b, input s, output y);\n  assign y = s ? a : b;\nendmodule\n")
	if err != nil {
		t.Fatal(err)
	}
	// Empty flow name: the daemon's -flow default applies.
	out, resp, err := c.OptimizeDesign(context.Background(), d, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Top() == nil {
		t.Fatal("no top module in response")
	}
	want, _ := smartly.NamedFlow("yosys")
	if resp.Flow != want.Canonical() {
		t.Errorf("default flow %q, want canonical yosys %q", resp.Flow, want.Canonical())
	}
}

// TestDesignModeIncrementalThroughDaemon is the end-to-end acceptance
// check of the incremental-resubmit contract through the daemon
// assembly: an 8-module design is submitted in design mode, resubmitted
// warm (8 hits), then resubmitted with exactly one module mutated — the
// daemon must report cache hits for the other 7 modules and a
// canonically identical netlist for the unchanged ones.
func TestDesignModeIncrementalThroughDaemon(t *testing.T) {
	s, err := newServer(options{
		jobs:  2,
		flow:  "yosys",
		mode:  api.ModeDesign,
		quiet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	const modules = 8
	recipe := genbench.DesignRecipe{Modules: modules, Seed: 77}
	d := genbench.GenerateDesign(recipe, 0.02)

	// Cold submission: the daemon's -mode design default applies, every
	// module misses.
	_, cold, err := c.OptimizeDesign(context.Background(), d, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Mode != api.ModeDesign || cold.ModuleCache == nil || cold.ModuleCache.Misses != modules {
		t.Fatalf("cold: mode=%q stats=%+v, want design mode with %d misses", cold.Mode, cold.ModuleCache, modules)
	}

	// Warm resubmission of the identical design: every module hits.
	coldOut, warm, err := c.OptimizeDesign(context.Background(), d, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache != "hit" || warm.ModuleCache.Hits != modules {
		t.Fatalf("warm: cache=%q stats=%+v, want %d hits", warm.Cache, warm.ModuleCache, modules)
	}

	// Mutate exactly one module and resubmit: 7 hits, 1 miss, and the
	// unchanged modules' optimized netlists are identical to the warm run.
	mutated := genbench.MutateModule(d, recipe, 0.02, 3, 1)
	incrOut, incr, err := c.OptimizeDesign(context.Background(), d, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if incr.ModuleCache.Hits != modules-1 || incr.ModuleCache.Misses != 1 {
		t.Fatalf("incremental: stats=%+v, want %d hits 1 miss", incr.ModuleCache, modules-1)
	}
	if got := incr.CacheByModule[mutated.Name]; got != "miss" {
		t.Errorf("mutated module %s served as %q, want miss", mutated.Name, got)
	}
	for _, m := range incrOut.Modules() {
		prev := coldOut.Module(m.Name)
		if prev == nil {
			t.Fatalf("module %s missing from warm output", m.Name)
		}
		same := smartly.Hash(m) == smartly.Hash(prev)
		if m.Name == mutated.Name {
			if same {
				t.Errorf("mutated module %s served unchanged netlist", m.Name)
			}
			continue
		}
		if !same {
			t.Errorf("unchanged module %s: optimized netlist drifted between resubmissions", m.Name)
		}
	}
}

func TestNewServerBadCacheDir(t *testing.T) {
	// A file where the cache directory should be must fail startup.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(options{cacheDir: filepath.Join(blocker, "sub")}); err == nil {
		t.Error("cache dir under a regular file accepted")
	}
}
