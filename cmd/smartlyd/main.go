// Command smartlyd serves RTL optimization flows over HTTP:
// optimization as a service on top of the smartly flow registry, with a
// content-addressed result cache so repeated submissions of the same
// netlist + flow return without re-running the engine.
//
// Usage:
//
//	smartlyd [-addr :8080] [-jobs n] [-queue n] [-workers n]
//	         [-cache-dir dir] [-cache-size mib] [-cache-peer url]
//	         [-jobs-dir dir] [-jobs-gc ttl] [-jobs-gc-size mib]
//	         [-flow full] [-mode whole|design] [-q]
//
// Endpoints (see docs/api.md):
//
//	POST /v1/optimize          optimize a JSON netlist (sync, or async
//	                           with {"async": true})
//	GET  /v1/jobs/{id}         poll an async submission
//	GET  /v1/jobs/{id}/events  stream job progress (server-sent events)
//	GET  /v1/cache/{id}        peer cache lookup (framed entry or 404)
//	PUT  /v1/cache/{id}        peer cache push
//	GET  /v1/flows             registered named flows
//	GET  /v1/passes            pass registry with options
//	GET  /healthz              liveness + job/cache/latency summary
//	GET  /metrics              Prometheus text exposition
//
// With -cache-dir set, async jobs persist to <cache-dir>/jobs (override
// with -jobs-dir): a restarted daemon re-serves finished jobs and
// re-runs interrupted ones under their original ids. -jobs-gc and
// -jobs-gc-size bound the store: finished job records older than the
// TTL or beyond the byte budget are collected by a background sweep
// (live jobs are never touched); orphaned and damaged record files
// from crashed prior incarnations are cleaned at startup either way.
// With -cache-peer set, misses consult the peer replica's cache before
// computing and stores push to it, fail-soft.
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests and
// accepted async jobs finish (bounded by -drain), new work is refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/server"
	"repro/internal/server/api"
)

// options collects the daemon flags.
type options struct {
	addr      string
	jobs      int
	queue     int
	workers   int
	cacheDir  string
	cacheMiB  int64
	cachePeer string
	jobsDir   string
	jobsTTL   time.Duration
	jobsMiB   int64
	flow      string
	mode      string
	drain     time.Duration
	quiet     bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.jobs, "jobs", 0, "max concurrent optimizations (0 = all cores)")
	flag.IntVar(&o.queue, "queue", 0, "max admitted requests before 503 (0 = 4*jobs)")
	flag.IntVar(&o.workers, "workers", 0, "default per-request engine worker budget (0 = all cores)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "result cache disk tier directory (empty = memory only)")
	flag.Int64Var(&o.cacheMiB, "cache-size", 0, "memory cache bound in MiB (0 = default, 256)")
	flag.StringVar(&o.cachePeer, "cache-peer", "", "base URL of a peer replica whose cache backs misses (empty = none)")
	flag.StringVar(&o.jobsDir, "jobs-dir", "", "durable job store directory (empty = <cache-dir>/jobs, or memory only without -cache-dir)")
	flag.DurationVar(&o.jobsTTL, "jobs-gc", 0, "collect finished job records older than this (0 = keep forever)")
	flag.Int64Var(&o.jobsMiB, "jobs-gc-size", 0, "job store byte budget in MiB; oldest finished records are collected beyond it (0 = unbounded)")
	flag.StringVar(&o.flow, "flow", "full", "flow run when a request names none")
	flag.StringVar(&o.mode, "mode", api.ModeWhole, "cache granularity for requests that set none: whole (one entry per design) or design (per-module entries, incremental resubmits)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "graceful shutdown budget")
	flag.BoolVar(&o.quiet, "q", false, "log only startup and shutdown")
	flag.Parse()

	if err := serve(o); err != nil {
		fmt.Fprintln(os.Stderr, "smartlyd:", err)
		os.Exit(1)
	}
}

// newServer assembles the serving stack from the daemon options.
func newServer(o options) (*server.Server, error) {
	if o.mode != "" && o.mode != api.ModeWhole && o.mode != api.ModeDesign {
		return nil, fmt.Errorf("unknown -mode %q (want %q or %q)", o.mode, api.ModeWhole, api.ModeDesign)
	}
	c, err := cache.New(o.cacheMiB<<20, o.cacheDir)
	if err != nil {
		return nil, err
	}
	if o.cachePeer != "" {
		c.SetRemote(cache.NewHTTPPeer(o.cachePeer, 0))
	}
	jobsDir := o.jobsDir
	if jobsDir == "" && o.cacheDir != "" {
		jobsDir = filepath.Join(o.cacheDir, "jobs")
	}
	if jobsDir != "" {
		// Pre-create so a misconfigured directory fails startup (the
		// server itself degrades to memory-only, which is right for a
		// library but wrong for a daemon asked for durability).
		if err := os.MkdirAll(jobsDir, 0o755); err != nil {
			return nil, fmt.Errorf("creating job store: %w", err)
		}
	}
	logf := log.Printf
	if o.quiet {
		logf = nil
	}
	return server.New(server.Config{
		Jobs:         o.jobs,
		QueueDepth:   o.queue,
		Workers:      o.workers,
		DefaultFlow:  o.flow,
		DefaultMode:  o.mode,
		Cache:        c,
		JobsDir:      jobsDir,
		JobsTTL:      o.jobsTTL,
		JobsMaxBytes: o.jobsMiB << 20,
		Logf:         logf,
	}), nil
}

func serve(o options) error {
	s, err := newServer(o)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	log.Printf("smartlyd: listening on %s (default flow %q, cache dir %q)",
		ln.Addr(), o.flow, o.cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("smartlyd: shutting down (draining up to %s)", o.drain)
	dctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	err = hs.Shutdown(dctx)   // stop accepting, wait for in-flight HTTP
	drainErr := s.Drain(dctx) // wait for accepted async jobs
	s.Close()                 // cancel anything still running
	if err == nil {
		err = drainErr
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("drain budget exceeded; canceled remaining work")
	}
	return err
}
