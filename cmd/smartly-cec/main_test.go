package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cec"
)

func TestReadTopAndCheck(t *testing.T) {
	a, err := readTop("../../testdata/fig3.v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := readTop("../../testdata/fig3.v")
	if err != nil {
		t.Fatal(err)
	}
	if err := cec.Check(a, b, nil); err != nil {
		t.Fatalf("file not equivalent to itself: %v", err)
	}
}

func TestReadTopMutatedDiffers(t *testing.T) {
	src, err := os.ReadFile("../../testdata/fig3.v")
	if err != nil {
		t.Fatal(err)
	}
	mutated := filepath.Join(t.TempDir(), "mut.v")
	text := string(src)
	text = replaceOnce(text, "? a : b", "? b : a")
	if err := os.WriteFile(mutated, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := readTop("../../testdata/fig3.v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := readTop(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if err := cec.Check(a, b, nil); err == nil {
		t.Error("mutated design reported equivalent")
	}
}

func replaceOnce(s, old, new string) string {
	i := indexOf(s, old)
	if i < 0 {
		panic("pattern not found")
	}
	return s[:i] + new + s[i+len(old):]
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
