// Command smartly-cec proves combinational equivalence of two designs
// (Verilog or JSON netlists). Flip-flops are cut and matched by cell
// name; ports are matched by name and width.
//
// Usage:
//
//	smartly-cec a.v b.v
//
// Exit status 0 means equivalent; 1 means a counterexample was found or
// the designs could not be compared.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cec"
	"repro/internal/rtlil"

	"repro"
)

func main() {
	rounds := flag.Int("rounds", 4, "random-simulation rounds before SAT")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: smartly-cec a.v b.v")
		os.Exit(2)
	}
	a, err := readTop(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartly-cec:", err)
		os.Exit(1)
	}
	b, err := readTop(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartly-cec:", err)
		os.Exit(1)
	}
	err = cec.Check(a, b, &cec.Options{RandomRounds: *rounds})
	switch {
	case err == nil:
		fmt.Println("EQUIVALENT")
	default:
		var ne *cec.NotEquivalentError
		if errors.As(err, &ne) {
			fmt.Println("NOT EQUIVALENT")
			fmt.Println(ne)
		} else {
			fmt.Fprintln(os.Stderr, "smartly-cec:", err)
		}
		os.Exit(1)
	}
}

func readTop(path string) (*rtlil.Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d *smartly.Design
	if strings.HasSuffix(path, ".json") {
		d, err = rtlil.ReadJSON(strings.NewReader(string(data)))
	} else {
		d, err = smartly.ParseVerilog(string(data))
	}
	if err != nil {
		return nil, err
	}
	m := d.Top()
	if m == nil {
		return nil, fmt.Errorf("%s: cannot determine top module", path)
	}
	return m, nil
}
