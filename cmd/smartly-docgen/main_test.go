package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestGenerateCoversRegistry(t *testing.T) {
	out := string(generate())
	for _, want := range []string{
		"### `opt_expr`", "### `opt_muxtree`", "### `opt_clean`", "### `opt_reduce`",
		"### `satmux`", "### `rebuild`", "### `smartly`", "### `fixpoint`",
		"`conflicts`", "`selector_bits`",
		"| `yosys` |", "| `sat` |", "| `rebuild` |", "| `full` |",
		"DO NOT EDIT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated reference missing %q", want)
		}
	}
	if !bytes.Equal(generate(), generate()) {
		t.Error("generation is not deterministic")
	}
}

// TestCommittedReferenceFresh is the same check CI runs: the committed
// docs/passes.md must match the live registry.
func TestCommittedReferenceFresh(t *testing.T) {
	have, err := os.ReadFile("../../docs/passes.md")
	if err != nil {
		t.Fatalf("docs/passes.md unreadable (run `go generate .`): %v", err)
	}
	if !bytes.Equal(have, generate()) {
		t.Error("docs/passes.md is stale; regenerate with `go generate .`")
	}
}
