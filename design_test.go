package smartly

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/genbench"
)

// genDesign builds a small deterministic multi-module design for
// facade-level sharding tests.
func genDesign(modules int, seed int64) *Design {
	return genbench.GenerateDesign(genbench.DesignRecipe{Modules: modules, Seed: seed}, 0.02)
}

// stripAll removes wall-clock noise from a report map for comparison.
func stripAll(reports map[string]RunReport) map[string]RunReport {
	for name, rep := range reports {
		rep.StripTimings()
		reports[name] = rep
	}
	return reports
}

// TestRunDesignShardedBitIdentical is the facade acceptance check: for
// a generated 8-module design, the sharded RunDesign output — canonical
// design hash and every per-module counter — is bit-identical to the
// serial run at every worker budget and module-jobs split tested.
func TestRunDesignShardedBitIdentical(t *testing.T) {
	flow, err := NamedFlow("yosys")
	if err != nil {
		t.Fatal(err)
	}
	const modules = 8
	serial := genDesign(modules, 11)
	serialReports, err := flow.RunDesign(serial, WithWorkers(1), WithModuleJobs(1))
	if err != nil {
		t.Fatal(err)
	}
	stripAll(serialReports)
	wantHash := HashDesign(serial)

	for _, jobs := range []int{0, 1, 2, 4, 8, 16} {
		d := genDesign(modules, 11)
		reports, err := flow.RunDesign(d, WithWorkers(jobs))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got := HashDesign(d); got != wantHash {
			t.Errorf("jobs=%d: design hash %s, want serial %s", jobs, got, wantHash)
		}
		if !reflect.DeepEqual(stripAll(reports), serialReports) {
			t.Errorf("jobs=%d: reports diverge from serial:\n got %+v\nwant %+v", jobs, reports, serialReports)
		}
	}
}

// TestRunDesignModuleJobsSplit: an explicit module-jobs override still
// produces identical results.
func TestRunDesignModuleJobsSplit(t *testing.T) {
	flow, err := NamedFlow("yosys")
	if err != nil {
		t.Fatal(err)
	}
	serial := genDesign(4, 5)
	if _, err := flow.RunDesign(serial, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	want := HashDesign(serial)
	for _, mj := range []int{1, 2, 3, 4, 7} {
		d := genDesign(4, 5)
		if _, err := flow.RunDesign(d, WithWorkers(4), WithModuleJobs(mj)); err != nil {
			t.Fatalf("moduleJobs=%d: %v", mj, err)
		}
		if got := HashDesign(d); got != want {
			t.Errorf("moduleJobs=%d: hash %s, want %s", mj, got, want)
		}
	}
}

// TestRunDesignCanceled: a canceled context must surface as an error
// with partial (never panicking) reports — modules the scheduler never
// started have no report entry.
func TestRunDesignCanceled(t *testing.T) {
	flow, err := NamedFlow("yosys")
	if err != nil {
		t.Fatal(err)
	}
	d := genDesign(4, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := flow.RunDesign(d, WithContext(ctx), WithWorkers(2))
	if err == nil {
		t.Fatal("canceled design run returned nil error")
	}
	if len(reports) > 4 {
		t.Errorf("%d reports for a 4-module design", len(reports))
	}
}

// FuzzRunDesignDeterminism fuzzes the design shard scheduler's inputs —
// module count, generator seed, worker budget and module-jobs split —
// and asserts the sharded result always hashes identically to the
// serial run, with identical per-module reports.
func FuzzRunDesignDeterminism(f *testing.F) {
	f.Add(uint8(3), int64(1), uint8(4), uint8(0))
	f.Add(uint8(8), int64(42), uint8(16), uint8(3))
	f.Add(uint8(1), int64(-9), uint8(0), uint8(1))
	f.Add(uint8(5), int64(77), uint8(2), uint8(9))
	flow, err := NamedFlow("yosys")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, nMod uint8, seed int64, workers, moduleJobs uint8) {
		modules := 1 + int(nMod)%6
		serial := genDesign(modules, seed)
		serialReports, err := flow.RunDesign(serial, WithWorkers(1), WithModuleJobs(1))
		if err != nil {
			t.Fatal(err)
		}
		stripAll(serialReports)
		want := HashDesign(serial)

		d := genDesign(modules, seed)
		reports, err := flow.RunDesign(d,
			WithWorkers(int(workers)%9), WithModuleJobs(int(moduleJobs)%9))
		if err != nil {
			t.Fatal(err)
		}
		if got := HashDesign(d); got != want {
			t.Fatalf("modules=%d seed=%d workers=%d moduleJobs=%d: sharded hash %s != serial %s",
				modules, seed, workers%9, moduleJobs%9, got, want)
		}
		if !reflect.DeepEqual(stripAll(reports), serialReports) {
			t.Fatalf("modules=%d seed=%d: reports diverge:\n got %+v\nwant %+v",
				modules, seed, reports, serialReports)
		}
		// The report keys cover exactly the design's modules.
		for _, m := range d.Modules() {
			if _, ok := reports[m.Name]; !ok {
				t.Fatalf("no report for module %s", m.Name)
			}
		}
		if len(reports) != modules {
			t.Fatalf("%d reports, want %d", len(reports), modules)
		}
		_ = fmt.Sprint(reports)
	})
}
