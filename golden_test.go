package smartly_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	smartly "repro"
)

// updateGoldens regenerates testdata/goldens.json instead of comparing:
//
//	go test . -run TestGoldenNetlists -update
var updateGoldens = flag.Bool("update", false, "rewrite testdata/goldens.json with the current optimizer output")

const goldensPath = "testdata/goldens.json"

// goldenKey identifies one golden: "file.v/module/flow".
func goldenKey(file, module, flow string) string {
	return file + "/" + module + "/" + flow
}

// computeGoldens optimizes every module of every testdata/*.v case with
// every named flow and returns the canonical netlist hashes.
func computeGoldens(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.v"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no testdata cases: %v", err)
	}
	sort.Strings(paths)
	out := map[string]string{}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		d, err := smartly.ParseVerilog(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, flowName := range smartly.FlowNames() {
			flow, err := smartly.NamedFlow(flowName)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range d.Modules() {
				work := m.Clone()
				if _, err := flow.Run(work); err != nil {
					t.Fatalf("%s %s/%s: %v", path, m.Name, flowName, err)
				}
				out[goldenKey(filepath.Base(path), m.Name, flowName)] = smartly.Hash(work)
			}
		}
	}
	return out
}

// TestGoldenNetlists pins the optimizer's output on every committed
// testdata case for every named flow, by canonical netlist hash. Any
// semantic drift — an oracle answering differently, a rewrite firing or
// not firing — shows up as a hash change. After an *intended* change,
// regenerate with `go test . -run TestGoldenNetlists -update` and commit
// the diff of testdata/goldens.json alongside the change that caused it.
func TestGoldenNetlists(t *testing.T) {
	got := computeGoldens(t)
	if *updateGoldens {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldensPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(got), goldensPath)
		return
	}
	data, err := os.ReadFile(goldensPath)
	if err != nil {
		t.Fatalf("missing goldens (generate with -update): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldensPath, err)
	}
	var keys []string
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no golden committed (regenerate with -update)", k)
			continue
		}
		if got[k] != w {
			t.Errorf("%s: netlist hash drifted\n  got  %s\n  want %s\n(run `go test . -run TestGoldenNetlists -update` if the change is intended)", k, got[k], w)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: stale golden for a removed case/flow (regenerate with -update)", k)
		}
	}
}
