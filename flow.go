package smartly

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// Typed option structs of the smaRTLy passes, reachable both from flow
// scripts ("satmux(conflicts=64)") and programmatically.
type (
	// SatMuxOptions tunes the SAT-based redundancy elimination (§II).
	SatMuxOptions = core.SatMuxOptions
	// RebuildOptions tunes the muxtree restructuring (§III).
	RebuildOptions = core.RebuildOptions
)

// Structured run reporting, replacing the flat Report.Details map.
type (
	// RunReport is the structured result of a flow run: per-pass
	// counters and timings plus fixpoint iteration counts.
	RunReport = opt.RunReport
	// PassReport aggregates one pass' calls, counters and wall time.
	PassReport = opt.PassReport
	// FixpointReport records one fixpoint wrapper's iterations.
	FixpointReport = opt.FixpointReport
	// PassEvent is one live progress observation (a completed pass
	// invocation), streamed to a WithProgress sink while a run is in
	// flight.
	PassEvent = opt.PassEvent
)

// Pass registry surface: specs describe every pass constructible from a
// flow script.
type (
	// PassSpec describes a registered pass (name, summary, options).
	PassSpec = opt.PassSpec
	// OptionSpec describes one script option of a pass.
	OptionSpec = opt.OptionSpec
)

// Passes lists every registered optimization pass, sorted by name:
// the Yosys-style baselines (opt_expr, opt_muxtree, opt_clean,
// opt_reduce) and the smaRTLy passes (satmux, rebuild, smartly).
func Passes() []PassSpec { return opt.Passes() }

// Flow is a composable optimization flow: an ordered sequence of
// registered passes with typed options, optionally wrapped in fixpoint
// iteration. Build one with ParseFlow (script DSL) or NamedFlow, then
// execute it with Run or RunDesign. A Flow is immutable and safe to
// reuse across concurrent runs.
type Flow struct {
	flow *opt.Flow
}

// ParseFlow parses a Yosys-style flow script, e.g.
//
//	opt_expr; satmux(conflicts=64); rebuild; opt_clean
//	fixpoint(iters=8) { opt_expr; smartly; opt_clean }
//
// Grammar:
//
//	flow  := step { ";" step }
//	step  := pass [ "(" key=value {"," key=value} ")" ] [ "{" flow "}" ]
//
// A "{ flow }" body is only valid on the fixpoint wrapper. Unknown
// passes and options are rejected with script positions; see Passes for
// the registry.
func ParseFlow(script string) (*Flow, error) {
	f, err := opt.ParseFlow(script)
	if err != nil {
		return nil, err
	}
	return &Flow{flow: f}, nil
}

// NamedFlow returns a registered named flow. The built-in names are the
// paper's four pipelines: "yosys", "sat", "rebuild" and "full".
func NamedFlow(name string) (*Flow, error) {
	f, err := opt.NamedFlow(name)
	if err != nil {
		return nil, err
	}
	return &Flow{flow: f}, nil
}

// FlowNames lists the registered named flows, sorted.
func FlowNames() []string { return opt.FlowNames() }

// String renders the flow in script syntax; ParseFlow(f.String())
// round-trips.
func (f *Flow) String() string {
	if f == nil {
		return ""
	}
	return f.flow.String()
}

// Canonical renders the flow in normalized script syntax — options
// sorted by key with canonical value spellings — the form used in
// serving-layer cache keys. Flows that differ only in option order,
// value spelling or whitespace render identically.
func (f *Flow) Canonical() string {
	if f == nil {
		return ""
	}
	return f.flow.Canonical()
}

// runConfig collects the functional options of Run/RunDesign.
type runConfig struct {
	ctx        context.Context
	workers    int
	moduleJobs int
	logf       func(format string, args ...any)
	progress   func(PassEvent)
	timings    bool
}

// RunOption tunes a flow run.
type RunOption func(*runConfig)

// WithContext attaches a context for cancellation and deadlines. A
// canceled run returns the context error; the rewrites applied before
// cancellation are each individually sound, so the module stays
// equivalent to the input.
func WithContext(ctx context.Context) RunOption {
	return func(c *runConfig) { c.ctx = ctx }
}

// WithWorkers bounds the total goroutines of parallel stages. For Run
// this is the intra-pass budget (SAT-mux query batches); for RunDesign
// the budget is split between concurrently optimized modules and each
// module's intra-pass stages (see WithModuleJobs). 0 means all cores; 1
// forces fully sequential execution. Results are bit-identical for
// every value.
func WithWorkers(n int) RunOption {
	return func(c *runConfig) { c.workers = n }
}

// WithModuleJobs overrides how many modules RunDesign optimizes
// concurrently. 0 (the default) derives the fan-out from the worker
// budget (as many module jobs as modules, capped by the budget, with
// the rest of the budget shared among them); 1 forces module-serial
// execution. Explicit values are still capped by the WithWorkers
// budget. Results are bit-identical for every value. Run ignores the
// option.
func WithModuleJobs(n int) RunOption {
	return func(c *runConfig) { c.moduleJobs = n }
}

// WithLogf attaches a sink for structured progress lines (per-pass
// timings as they complete). nil discards them.
func WithLogf(logf func(format string, args ...any)) RunOption {
	return func(c *runConfig) { c.logf = logf }
}

// WithProgress attaches a sink for structured per-pass progress events,
// emitted as each pass invocation completes while the run is still in
// flight (RunDesign labels events with the module name). Calls are
// serialized. Events carry wall-clock durations regardless of
// WithTimings — they are live telemetry, never part of the
// deterministic report. nil discards them.
func WithProgress(fn func(PassEvent)) RunOption {
	return func(c *runConfig) { c.progress = fn }
}

// WithTimings includes wall-clock durations in the returned RunReport.
// Off by default so that reports are fully deterministic and can be
// compared across runs and worker counts.
func WithTimings() RunOption {
	return func(c *runConfig) { c.timings = true }
}

func newRunConfig(opts []RunOption) runConfig {
	cfg := runConfig{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.ctx == nil {
		cfg.ctx = context.Background()
	}
	return cfg
}

// Run executes the flow on the module in place and returns the
// structured run report.
func (f *Flow) Run(m *Module, opts ...RunOption) (RunReport, error) {
	cfg := newRunConfig(opts)
	rep, _, err := f.run(cfg, m)
	return rep, err
}

// run executes the flow under cfg, returning both the structured report
// and the flat legacy result (for the Optimize shims).
func (f *Flow) run(cfg runConfig, m *Module) (RunReport, opt.Result, error) {
	if f == nil || f.flow == nil {
		return RunReport{}, opt.Result{}, fmt.Errorf("smartly: nil flow")
	}
	ec := opt.NewCtx(cfg.ctx, opt.Config{Workers: cfg.workers, Logf: cfg.logf, Progress: cfg.progress})
	start := time.Now()
	res, err := f.flow.Run(ec, m)
	wall := time.Since(start)
	rep := ec.Report()
	rep.Changed = res.Changed
	if cfg.timings {
		rep.Duration = wall
	} else {
		rep.StripTimings()
	}
	return rep, res, err
}

// RunDesign executes the flow over every module of the design through
// the engine's design shard scheduler: modules fan out to a bounded
// worker pool, with the WithWorkers budget split between module-level
// and intra-pass parallelism (override the fan-out with
// WithModuleJobs). Modules are disjoint netlists and reports merge in
// design order, so the optimized design and the per-module reports are
// bit-identical to a serial run for any budget or split. It returns the
// per-module reports keyed by module name and the first error
// encountered.
func (f *Flow) RunDesign(d *Design, opts ...RunOption) (map[string]RunReport, error) {
	cfg := newRunConfig(opts)
	if f == nil || f.flow == nil {
		return nil, fmt.Errorf("smartly: nil flow")
	}
	ec := opt.NewCtx(cfg.ctx, opt.Config{Workers: cfg.workers, Logf: cfg.logf, Progress: cfg.progress})
	runs, err := f.flow.RunDesign(ec, d, opt.DesignConfig{ModuleJobs: cfg.moduleJobs})
	out := make(map[string]RunReport, len(runs))
	for i := range runs {
		if runs[i].Module == nil {
			continue // module skipped by a canceled run; err carries the cause
		}
		rep := runs[i].Report
		if !cfg.timings {
			rep.StripTimings()
		}
		out[runs[i].Module.Name] = rep
	}
	return out, err
}

// Design IO on the facade, so tools need not reach into internal/rtlil.

// ReadJSON reads a design from the Yosys-compatible JSON netlist format
// (as written by WriteJSON).
func ReadJSON(r io.Reader) (*Design, error) { return rtlil.ReadJSON(r) }

// WriteJSON writes the design in the Yosys-compatible JSON netlist
// format.
func WriteJSON(w io.Writer, d *Design) error { return rtlil.WriteJSON(w, d) }

// WriteVerilog writes the module as synthesizable Verilog.
func WriteVerilog(w io.Writer, m *Module) error { return rtlil.WriteVerilog(w, m) }

// Stats summarizes the contents of a module (wires, cells by type,
// muxes, connections).
type Stats = rtlil.Stats

// CollectStats gathers cell-type counts and netlist size figures.
func CollectStats(m *Module) Stats { return rtlil.CollectStats(m) }
